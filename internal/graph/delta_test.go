package graph

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"
)

// buildBase constructs a small base CSR: n nodes "n0".."n<n-1>" with the
// given dense edge pairs.
func buildBase(t testing.TB, n int, edges [][2]int32) *CSR {
	t.Helper()
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("n%02d", i)
	}
	from := make([]int32, len(edges))
	to := make([]int32, len(edges))
	for k, e := range edges {
		from[k], to[k] = e[0], e[1]
	}
	c := NewCSR(ids, from, to)
	if err := c.Validate(); err != nil {
		t.Fatalf("base CSR invalid: %v", err)
	}
	return c
}

// effectiveEdges replays ops over the base edge set in a plain map — the
// reference model every DeltaCSR accessor is compared against.
func effectiveEdges(base *CSR, ops []EdgeOp) map[[2]int32]struct{} {
	set := map[[2]int32]struct{}{}
	for i := 0; i < base.NumNodes(); i++ {
		for _, t := range base.Out(i) {
			set[[2]int32{int32(i), t}] = struct{}{}
		}
	}
	for _, op := range ops {
		if op.Del {
			delete(set, [2]int32{op.From, op.To})
		} else {
			set[[2]int32{op.From, op.To}] = struct{}{}
		}
	}
	return set
}

func sortedRow(d *DeltaCSR, i int32) []int32 {
	var row []int32
	d.EachOut(i, func(t int32) { row = append(row, t) })
	slices.Sort(row)
	return row
}

func TestDeltaCSRAccessorsMatchModel(t *testing.T) {
	base := buildBase(t, 6, [][2]int32{{0, 1}, {0, 2}, {1, 2}, {2, 0}, {3, 3}, {4, 0}})
	d := NewDeltaCSR(base)

	ops := []EdgeOp{
		{From: 0, To: 4},              // overlay insert
		{From: 1, To: 2, Del: true},   // tombstone a base edge
		{From: 3, To: 3, Del: true},   // remove a self-loop → node 3 dangling
		{From: 5, To: 1},              // previously dangling node gains an edge
		{From: 1, To: 2},              // re-add the tombstoned base edge
		{From: 0, To: 4, Del: true},   // remove the overlay insert again
		{From: 2, To: 5},              // plain insert
	}
	for _, op := range ops {
		var changed bool
		if op.Del {
			changed = d.RemoveEdge(op.From, op.To)
		} else {
			changed = d.AddEdge(op.From, op.To)
		}
		if !changed {
			t.Fatalf("op %+v reported no-op, want effective", op)
		}
	}
	// No-ops: present edge, absent edge, duplicate overlay edge.
	if d.AddEdge(0, 1) {
		t.Fatal("AddEdge of a live base edge must be a no-op")
	}
	if d.RemoveEdge(4, 4) {
		t.Fatal("RemoveEdge of an absent edge must be a no-op")
	}
	if d.AddEdge(2, 5) {
		t.Fatal("AddEdge of a live overlay edge must be a no-op")
	}
	if got := len(d.Ops()); got != len(ops) {
		t.Fatalf("log holds %d ops, want %d (no-ops must not be logged)", got, len(ops))
	}

	model := effectiveEdges(base, ops)
	if d.NumEdges() != len(model) {
		t.Fatalf("NumEdges = %d, want %d", d.NumEdges(), len(model))
	}
	for i := int32(0); int(i) < d.NumNodes(); i++ {
		var want []int32
		for e := range model {
			if e[0] == i {
				want = append(want, e[1])
			}
		}
		slices.Sort(want)
		if got := sortedRow(d, i); !slices.Equal(got, want) {
			t.Fatalf("row %d = %v, want %v", i, got, want)
		}
		if got := d.OutDegree(int(i)); got != len(want) {
			t.Fatalf("OutDegree(%d) = %d, want %d", i, got, len(want))
		}
	}

	wantTouched := []int32{0, 1, 2, 3, 5}
	if got := d.Touched(); !slices.Equal(got, wantTouched) {
		t.Fatalf("Touched() = %v, want %v", got, wantTouched)
	}
}

// assertCompactEqualsRebuild verifies the tentpole compaction contract:
// Compact() is byte-identical to NewCSR over the equivalent full edge list.
func assertCompactEqualsRebuild(t testing.TB, d *DeltaCSR) {
	t.Helper()
	model := effectiveEdges(d.Base(), d.Ops())
	from := make([]int32, 0, len(model))
	to := make([]int32, 0, len(model))
	for e := range model {
		from = append(from, e[0])
		to = append(to, e[1])
	}
	want := NewCSR(d.Base().IDs, from, to)
	got := d.Compact()
	if err := got.Validate(); err != nil {
		t.Fatalf("compacted CSR invalid: %v", err)
	}
	if !slices.Equal(got.IDs, want.IDs) {
		t.Fatal("compacted IDs differ from rebuild")
	}
	for name, pair := range map[string][2][]int32{
		"OutOff":   {got.OutOff, want.OutOff},
		"OutTo":    {got.OutTo, want.OutTo},
		"InOff":    {got.InOff, want.InOff},
		"InFrom":   {got.InFrom, want.InFrom},
		"Dangling": {got.Dangling, want.Dangling},
	} {
		if !slices.Equal(pair[0], pair[1]) {
			t.Fatalf("compacted %s = %v, want %v", name, pair[0], pair[1])
		}
	}
}

func TestDeltaCSRCompactMatchesRebuild(t *testing.T) {
	base := buildBase(t, 8, [][2]int32{{0, 1}, {0, 7}, {1, 2}, {2, 0}, {3, 3}, {6, 5}})
	d := NewDeltaCSR(base)
	d.AddEdge(0, 3)
	d.AddEdge(0, 0)
	d.RemoveEdge(0, 1)
	d.AddEdge(7, 6)
	d.RemoveEdge(6, 5) // 6 becomes dangling
	d.AddEdge(5, 5)
	assertCompactEqualsRebuild(t, d)

	// Empty overlay: Flatten returns the base itself, Compact an equal copy.
	e := NewDeltaCSR(base)
	if e.Flatten() != base {
		t.Fatal("Flatten with empty overlay must return the base CSR")
	}
	assertCompactEqualsRebuild(t, e)
	if d.Flatten() == base {
		t.Fatal("Flatten with a non-empty overlay must not return the base")
	}
}

func TestDeltaCSRCloneIsolation(t *testing.T) {
	base := buildBase(t, 5, [][2]int32{{0, 1}, {1, 2}, {2, 3}})
	d := NewDeltaCSR(base)
	d.AddEdge(0, 2)
	d.RemoveEdge(1, 2)

	c := d.Clone()
	before := sortedRow(d, 0)
	beforeOps := len(d.Ops())

	// Mutate the clone heavily; the original must be unaffected.
	c.AddEdge(0, 3)
	c.AddEdge(0, 4)
	c.AddEdge(1, 2) // un-tombstone in the clone only
	c.RemoveEdge(0, 2)

	if got := sortedRow(d, 0); !slices.Equal(got, before) {
		t.Fatalf("original row 0 changed after clone mutation: %v → %v", before, got)
	}
	if len(d.Ops()) != beforeOps {
		t.Fatalf("original log grew after clone mutation: %d → %d", beforeOps, len(d.Ops()))
	}
	if got := sortedRow(d, 1); len(got) != 0 {
		t.Fatalf("original tombstone lost: row 1 = %v", got)
	}
	if got := sortedRow(c, 1); !slices.Equal(got, []int32{2}) {
		t.Fatalf("clone un-tombstone failed: row 1 = %v", got)
	}
	assertCompactEqualsRebuild(t, c)
}

func TestDeltaCSRRandomizedVsModel(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(12)
		var edges [][2]int32
		for k := 0; k < rng.Intn(3*n); k++ {
			edges = append(edges, [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))})
		}
		base := buildBase(t, n, edges)
		d := NewDeltaCSR(base)
		for k := 0; k < rng.Intn(4 * n); k++ {
			f, to := int32(rng.Intn(n)), int32(rng.Intn(n))
			if rng.Intn(3) == 0 {
				d.RemoveEdge(f, to)
			} else {
				d.AddEdge(f, to)
			}
		}
		model := effectiveEdges(base, d.Ops())
		if d.NumEdges() != len(model) {
			t.Fatalf("trial %d: NumEdges = %d, want %d", trial, d.NumEdges(), len(model))
		}
		assertCompactEqualsRebuild(t, d)
	}
}

// FuzzDeltaCompaction drives an arbitrary op sequence against an arbitrary
// base graph and asserts the satellite contract: compaction produces
// offset/column arrays byte-identical to NewCSR over the equivalent full
// edge list.
func FuzzDeltaCompaction(f *testing.F) {
	f.Add(uint8(4), []byte{0x01, 0x12, 0x83, 0x21})
	f.Add(uint8(1), []byte{0x00, 0x80})
	f.Add(uint8(9), []byte{0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde})
	f.Fuzz(func(t *testing.T, nRaw uint8, ops []byte) {
		n := 1 + int(nRaw%12)
		// Base edges come from the first half of ops, overlay ops from all
		// of it, so the base and the delta overlap in interesting ways.
		var edges [][2]int32
		for _, b := range ops[:len(ops)/2] {
			edges = append(edges, [2]int32{int32(int(b>>4) % n), int32(int(b&0x0f) % n)})
		}
		base := buildBase(t, n, edges)
		d := NewDeltaCSR(base)
		for i, b := range ops {
			f, to := int32(int(b>>4)%n), int32(int(b&0x0f)%n)
			if i%3 == 2 || b&0x80 != 0 {
				d.RemoveEdge(f, to)
			} else {
				d.AddEdge(f, to)
			}
		}
		model := effectiveEdges(base, d.Ops())
		if d.NumEdges() != len(model) {
			t.Fatalf("NumEdges = %d, want %d", d.NumEdges(), len(model))
		}
		assertCompactEqualsRebuild(t, d)
	})
}
