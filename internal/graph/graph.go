// Package graph provides the directed-graph substrate shared by the
// authority analyzers (PageRank, HITS), the crawler frontier, and the
// visualization layer. Nodes are identified by string IDs; the structure is
// append-only with deduplicated edges and deterministic iteration order.
package graph

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Directed is a simple directed graph with string node IDs. The zero value
// is not usable; call New.
type Directed struct {
	nodes map[string]struct{}
	out   map[string][]string
	in    map[string][]string
	edges map[[2]string]struct{}
	order []string // insertion order of nodes, for deterministic iteration

	// csr lazily caches the frozen CSR view (see CSR()); mutations drop it.
	// Atomic so concurrent readers of an unchanging graph stay safe.
	csr atomic.Pointer[CSR]
}

// New returns an empty directed graph.
func New() *Directed {
	return &Directed{
		nodes: map[string]struct{}{},
		out:   map[string][]string{},
		in:    map[string][]string{},
		edges: map[[2]string]struct{}{},
	}
}

// AddNode inserts a node; adding an existing node is a no-op.
func (g *Directed) AddNode(id string) {
	if _, ok := g.nodes[id]; ok {
		return
	}
	g.nodes[id] = struct{}{}
	g.order = append(g.order, id)
	g.csr.Store(nil)
}

// AddEdge inserts the directed edge from→to, creating missing nodes.
// Parallel edges are collapsed; self-loops are allowed (callers that must
// forbid them, like the authority graph, reject earlier).
func (g *Directed) AddEdge(from, to string) {
	key := [2]string{from, to}
	if _, dup := g.edges[key]; dup {
		return
	}
	g.AddNode(from)
	g.AddNode(to)
	g.edges[key] = struct{}{}
	g.out[from] = append(g.out[from], to)
	g.in[to] = append(g.in[to], from)
	g.csr.Store(nil)
}

// HasNode reports whether id is in the graph.
func (g *Directed) HasNode(id string) bool {
	_, ok := g.nodes[id]
	return ok
}

// HasEdge reports whether the directed edge from→to exists.
func (g *Directed) HasEdge(from, to string) bool {
	_, ok := g.edges[[2]string{from, to}]
	return ok
}

// NumNodes returns the node count.
func (g *Directed) NumNodes() int { return len(g.nodes) }

// NumEdges returns the (deduplicated) edge count.
func (g *Directed) NumEdges() int { return len(g.edges) }

// Nodes returns all node IDs in insertion order. The slice is shared;
// callers must not modify it.
func (g *Directed) Nodes() []string { return g.order }

// SortedNodes returns all node IDs in lexicographic order (a fresh slice).
func (g *Directed) SortedNodes() []string {
	ids := append([]string(nil), g.order...)
	sort.Strings(ids)
	return ids
}

// Out returns the successors of id in edge-insertion order.
func (g *Directed) Out(id string) []string { return g.out[id] }

// In returns the predecessors of id in edge-insertion order.
func (g *Directed) In(id string) []string { return g.in[id] }

// OutDegree returns the number of distinct successors of id.
func (g *Directed) OutDegree(id string) int { return len(g.out[id]) }

// InDegree returns the number of distinct predecessors of id.
func (g *Directed) InDegree(id string) int { return len(g.in[id]) }

// BFS traverses from seed up to maxDepth hops following out-edges (use
// Undirected() first for undirected reach). It returns each reached node's
// hop distance, including seed at 0. An unknown seed yields an empty map.
func (g *Directed) BFS(seed string, maxDepth int) map[string]int {
	dist := map[string]int{}
	if !g.HasNode(seed) {
		return dist
	}
	dist[seed] = 0
	frontier := []string{seed}
	for d := 1; d <= maxDepth && len(frontier) > 0; d++ {
		var next []string
		for _, u := range frontier {
			for _, v := range g.out[u] {
				if _, seen := dist[v]; !seen {
					dist[v] = d
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return dist
}

// Undirected returns a new graph with every edge mirrored, preserving node
// insertion order.
func (g *Directed) Undirected() *Directed {
	u := New()
	for _, id := range g.order {
		u.AddNode(id)
	}
	for e := range g.edges {
		u.AddEdge(e[0], e[1])
		u.AddEdge(e[1], e[0])
	}
	return u
}

// WeaklyConnectedComponents returns the node sets of each weakly connected
// component, largest first; components of equal size are ordered by their
// smallest member for determinism.
func (g *Directed) WeaklyConnectedComponents() [][]string {
	u := g.Undirected()
	seen := map[string]bool{}
	var comps [][]string
	for _, start := range u.SortedNodes() {
		if seen[start] {
			continue
		}
		var comp []string
		queue := []string{start}
		seen[start] = true
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			comp = append(comp, n)
			for _, v := range u.out[n] {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
		sort.Strings(comp)
		comps = append(comps, comp)
	}
	sort.SliceStable(comps, func(i, j int) bool {
		if len(comps[i]) != len(comps[j]) {
			return len(comps[i]) > len(comps[j])
		}
		return comps[i][0] < comps[j][0]
	})
	return comps
}

// DegreeHistogram returns counts of nodes by in-degree, used by the
// workload reports to show the synthetic blogosphere is heavy-tailed.
func (g *Directed) DegreeHistogram() map[int]int {
	h := map[int]int{}
	for _, id := range g.order {
		h[g.InDegree(id)]++
	}
	return h
}

// Validate checks internal consistency (every edge endpoint is a node,
// adjacency matches the edge set). It exists to guard deserialized graphs.
func (g *Directed) Validate() error {
	for e := range g.edges {
		if !g.HasNode(e[0]) || !g.HasNode(e[1]) {
			return fmt.Errorf("graph: edge %v has missing endpoint", e)
		}
	}
	countOut := 0
	for _, succs := range g.out {
		countOut += len(succs)
	}
	if countOut != len(g.edges) {
		return fmt.Errorf("graph: adjacency count %d != edge count %d", countOut, len(g.edges))
	}
	return nil
}
