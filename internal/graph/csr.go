package graph

import (
	"fmt"
	"slices"
)

// CSR is a frozen compressed-sparse-row view of a directed graph: node IDs
// interned into a dense [0, n) index, out- and in-adjacency as offset +
// column arrays, and the dangling (zero out-degree) nodes listed once. It
// is the solver-facing representation — an iterative kernel pays only for
// its sweeps, never for re-sorting node IDs or rebuilding index maps.
//
// Layout invariants (relied on by the linkrank kernels and asserted by
// Validate):
//
//   - IDs is the deterministic node order; IDs[i] is the ID of dense node i.
//     Builders in this repository always produce lexicographic order, so a
//     CSR built twice from the same graph is identical.
//   - OutOff has length n+1 and row i's successors are
//     OutTo[OutOff[i]:OutOff[i+1]], sorted ascending, deduplicated.
//   - InOff/InFrom mirror the same edges transposed, rows likewise sorted.
//   - Dangling lists every node with no out-edges, ascending.
//
// A CSR is immutable after construction and safe for concurrent use.
type CSR struct {
	IDs      []string
	OutOff   []int32
	OutTo    []int32
	InOff    []int32
	InFrom   []int32
	Dangling []int32

	idx map[string]int32
}

// NumNodes returns the node count.
func (c *CSR) NumNodes() int { return len(c.IDs) }

// NumEdges returns the deduplicated edge count.
func (c *CSR) NumEdges() int { return len(c.OutTo) }

// Index returns the dense index of id.
func (c *CSR) Index(id string) (int, bool) {
	i, ok := c.idx[id]
	return int(i), ok
}

// OutDegree returns the out-degree of dense node i.
func (c *CSR) OutDegree(i int) int { return int(c.OutOff[i+1] - c.OutOff[i]) }

// InDegree returns the in-degree of dense node i.
func (c *CSR) InDegree(i int) int { return int(c.InOff[i+1] - c.InOff[i]) }

// Out returns the successors of dense node i (shared; do not modify).
func (c *CSR) Out(i int) []int32 { return c.OutTo[c.OutOff[i]:c.OutOff[i+1]] }

// In returns the predecessors of dense node i (shared; do not modify).
func (c *CSR) In(i int) []int32 { return c.InFrom[c.InOff[i]:c.InOff[i+1]] }

// NewCSR builds a CSR over the given node IDs and edge list. ids must be
// unique (they become the dense order verbatim — pass a sorted slice for
// the deterministic-order contract); from[k]→to[k] are dense-index edge
// pairs. Parallel edges collapse, matching Directed.AddEdge semantics;
// self-loops are kept. NewCSR panics on out-of-range indexes or duplicate
// IDs — both are programmer errors, like an out-of-bounds slice index.
func NewCSR(ids []string, from, to []int32) *CSR {
	n := len(ids)
	if len(from) != len(to) {
		panic(fmt.Sprintf("graph: NewCSR edge arrays differ: %d from vs %d to", len(from), len(to)))
	}
	idx := make(map[string]int32, n)
	for i, id := range ids {
		if _, dup := idx[id]; dup {
			panic(fmt.Sprintf("graph: NewCSR duplicate node ID %q", id))
		}
		idx[id] = int32(i)
	}
	for k := range from {
		if from[k] < 0 || int(from[k]) >= n || to[k] < 0 || int(to[k]) >= n {
			panic(fmt.Sprintf("graph: NewCSR edge %d→%d out of range [0,%d)", from[k], to[k], n))
		}
	}
	c := &CSR{IDs: ids, idx: idx}

	// Counting sort the edges into out-rows.
	c.OutOff = make([]int32, n+1)
	for _, f := range from {
		c.OutOff[f+1]++
	}
	for i := 0; i < n; i++ {
		c.OutOff[i+1] += c.OutOff[i]
	}
	c.OutTo = make([]int32, len(to))
	cursor := make([]int32, n)
	copy(cursor, c.OutOff[:n])
	for k, f := range from {
		c.OutTo[cursor[f]] = to[k]
		cursor[f]++
	}
	// Sort each row, then compact duplicates in place, rebuilding offsets.
	w := int32(0)
	rowStart := int32(0)
	for i := 0; i < n; i++ {
		row := c.OutTo[rowStart:c.OutOff[i+1]]
		rowStart = c.OutOff[i+1]
		slices.Sort(row)
		newStart := w
		for k, t := range row {
			if k > 0 && t == row[k-1] {
				continue
			}
			c.OutTo[w] = t
			w++
		}
		c.OutOff[i] = newStart
	}
	// OutOff[i] now holds the compacted start of every row; close the
	// final row (rows are contiguous, so starts + total fully define them).
	c.OutOff[n] = w
	c.OutTo = c.OutTo[:w:w]

	// Transpose the deduplicated out-rows into in-rows. Iterating sources
	// ascending makes every in-row ascending without a second sort.
	c.InOff = make([]int32, n+1)
	for _, t := range c.OutTo {
		c.InOff[t+1]++
	}
	for i := 0; i < n; i++ {
		c.InOff[i+1] += c.InOff[i]
	}
	c.InFrom = make([]int32, len(c.OutTo))
	copy(cursor, c.InOff[:n])
	for i := int32(0); int(i) < n; i++ {
		for _, t := range c.OutTo[c.OutOff[i]:c.OutOff[i+1]] {
			c.InFrom[cursor[t]] = i
			cursor[t]++
		}
	}

	for i := 0; i < n; i++ {
		if c.OutOff[i] == c.OutOff[i+1] {
			c.Dangling = append(c.Dangling, int32(i))
		}
	}
	return c
}

// BuildCSR freezes g into a fresh CSR with nodes in lexicographic ID order
// (the same deterministic order the solvers have always used). Use
// (*Directed).CSR for the cached variant.
func BuildCSR(g *Directed) *CSR {
	ids := g.SortedNodes()
	idx := make(map[string]int32, len(ids))
	for i, id := range ids {
		idx[id] = int32(i)
	}
	from := make([]int32, 0, len(g.edges))
	to := make([]int32, 0, len(g.edges))
	for e := range g.edges {
		from = append(from, idx[e[0]])
		to = append(to, idx[e[1]])
	}
	return NewCSR(ids, from, to)
}

// CSR returns the frozen CSR view of g, built on first use and cached
// until the next mutation. Concurrent calls on an unchanging graph are
// safe (racing builders produce identical views and one wins); mutating
// the graph concurrently with anything else is not, as everywhere on
// Directed.
func (g *Directed) CSR() *CSR {
	if c := g.csr.Load(); c != nil {
		return c
	}
	c := BuildCSR(g)
	g.csr.Store(c)
	return c
}

// Validate checks the CSR layout invariants; it guards hand-built views in
// tests and is cheap enough (O(V+E)) to run on deserialized data.
func (c *CSR) Validate() error {
	n := len(c.IDs)
	if len(c.OutOff) != n+1 || len(c.InOff) != n+1 {
		return fmt.Errorf("graph: csr offset arrays sized %d/%d, want %d", len(c.OutOff), len(c.InOff), n+1)
	}
	if len(c.OutTo) != len(c.InFrom) {
		return fmt.Errorf("graph: csr edge arrays differ: %d out vs %d in", len(c.OutTo), len(c.InFrom))
	}
	for name, off := range map[string][]int32{"out": c.OutOff, "in": c.InOff} {
		if off[0] != 0 || int(off[n]) != len(c.OutTo) {
			return fmt.Errorf("graph: csr %s offsets span [%d,%d], want [0,%d]", name, off[0], off[n], len(c.OutTo))
		}
		if !slices.IsSorted(off) {
			return fmt.Errorf("graph: csr %s offsets not monotone", name)
		}
	}
	for i := 0; i < n; i++ {
		if !slices.IsSorted(c.OutTo[c.OutOff[i]:c.OutOff[i+1]]) {
			return fmt.Errorf("graph: csr out-row %d not sorted", i)
		}
		if !slices.IsSorted(c.InFrom[c.InOff[i]:c.InOff[i+1]]) {
			return fmt.Errorf("graph: csr in-row %d not sorted", i)
		}
	}
	dang := 0
	for i := 0; i < n; i++ {
		if c.OutDegree(i) == 0 {
			dang++
		}
	}
	if dang != len(c.Dangling) {
		return fmt.Errorf("graph: csr lists %d dangling nodes, want %d", len(c.Dangling), dang)
	}
	return nil
}
