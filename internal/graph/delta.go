package graph

import (
	"fmt"
	"slices"
)

// DeltaCSR is an incremental overlay over a frozen base CSR: edge
// insertions are accumulated as per-row appended target slices, edge
// removals as a tombstone set over base edges, and every effective change
// is recorded in an append-only op log so an incremental consumer (the
// frontier push solver in internal/linkrank) can replay exactly the ops it
// has not seen yet. The node set is fixed to the base's — callers that
// need to add or remove nodes rebuild the base instead (that is the blog
// layer's "full invalidation" fallback).
//
// Mutability contract: a DeltaCSR is mutated by exactly one writer
// (AddEdge/RemoveEdge) and is safe for concurrent readers only once the
// writer has stopped — the same freeze-after-build discipline as CSR. The
// blog layer builds a fresh view per link epoch by Clone()+AddEdge, so
// published views are immutable and snapshots can share them; Clone deep-
// copies every overlay row, so extending a clone never disturbs readers of
// the original.
//
// When the overlay grows past a size ratio, Compact() merges it back into
// a fresh base CSR whose offset/column arrays are byte-identical to
// NewCSR built from the equivalent full edge list (fuzz-asserted), so
// compaction is invisible to every CSR consumer.
type DeltaCSR struct {
	base *CSR
	// adds holds the overlay out-rows: targets appended to row i, in
	// insertion order, disjoint from the effective base row (an edge that
	// exists un-tombstoned in the base is never also in adds).
	adds map[int32][]int32
	// addSet indexes every overlay edge for O(1) duplicate checks.
	addSet map[int64]struct{}
	// dels tombstones base edges; always a subset of the base edge set.
	dels map[int64]struct{}
	// delsPerRow counts tombstones per source so OutDegree stays O(1).
	delsPerRow map[int32]int32
	// log records every effective mutation since the base was frozen, in
	// application order. Re-adding a tombstoned edge and re-removing an
	// overlay edge are logged too: the log answers "which rows changed
	// between op index a and b", not "what is the net delta".
	log   []EdgeOp
	nAdds int
}

// EdgeOp is one effective overlay mutation.
type EdgeOp struct {
	From, To int32
	// Del marks a removal; insertions leave it false.
	Del bool
}

// edgeKey packs a dense edge into one comparable map key.
func edgeKey(from, to int32) int64 {
	return int64(from)<<32 | int64(uint32(to))
}

// NewDeltaCSR returns an empty overlay over base.
func NewDeltaCSR(base *CSR) *DeltaCSR {
	return &DeltaCSR{
		base:       base,
		adds:       map[int32][]int32{},
		addSet:     map[int64]struct{}{},
		dels:       map[int64]struct{}{},
		delsPerRow: map[int32]int32{},
	}
}

// Base returns the frozen base CSR the overlay applies to.
func (d *DeltaCSR) Base() *CSR { return d.base }

// NumNodes returns the node count (fixed to the base's).
func (d *DeltaCSR) NumNodes() int { return d.base.NumNodes() }

// NumEdges returns the effective deduplicated edge count.
func (d *DeltaCSR) NumEdges() int { return d.base.NumEdges() - len(d.dels) + d.nAdds }

// OverlaySize reports how many effective ops the overlay has accumulated
// since the base was frozen — the blog layer's compaction trigger.
func (d *DeltaCSR) OverlaySize() int { return len(d.log) }

// Ops returns the append-only op log (shared; do not modify). Ops()[k:]
// is exactly the mutations applied since the log was k long, which is how
// an incremental solver seeds its residual frontier.
func (d *DeltaCSR) Ops() []EdgeOp { return d.log }

// Index returns the dense index of id, delegating to the base.
func (d *DeltaCSR) Index(id string) (int, bool) { return d.base.Index(id) }

// IDs returns the dense node order, delegating to the base.
func (d *DeltaCSR) IDs() []string { return d.base.IDs }

// baseRowHasEdge reports whether from→to is a base edge (tombstoned or
// not); base rows are sorted, so this is a binary search.
func (d *DeltaCSR) baseRowHasEdge(from, to int32) bool {
	row := d.base.Out(int(from))
	_, ok := slices.BinarySearch(row, to)
	return ok
}

// checkEdge panics on out-of-range endpoints, mirroring NewCSR: a bad
// dense index is a programmer error, like an out-of-bounds slice index.
func (d *DeltaCSR) checkEdge(from, to int32) {
	n := int32(d.base.NumNodes())
	if from < 0 || from >= n || to < 0 || to >= n {
		panic(fmt.Sprintf("graph: DeltaCSR edge %d→%d out of range [0,%d)", from, to, n))
	}
}

// AddEdge records the insertion of from→to. It reports whether the edge
// was actually new: inserting an edge that is already effectively present
// is a no-op (parallel edges collapse, matching NewCSR semantics) and is
// not logged. Re-adding a tombstoned base edge clears the tombstone.
func (d *DeltaCSR) AddEdge(from, to int32) bool {
	d.checkEdge(from, to)
	k := edgeKey(from, to)
	if d.baseRowHasEdge(from, to) {
		if _, gone := d.dels[k]; !gone {
			return false // present in the base, not tombstoned
		}
		delete(d.dels, k)
		if d.delsPerRow[from]--; d.delsPerRow[from] == 0 {
			delete(d.delsPerRow, from)
		}
	} else {
		if _, dup := d.addSet[k]; dup {
			return false
		}
		d.addSet[k] = struct{}{}
		d.adds[from] = append(d.adds[from], to)
		d.nAdds++
	}
	d.log = append(d.log, EdgeOp{From: from, To: to})
	return true
}

// RemoveEdge records the removal of from→to. It reports whether the edge
// was effectively present: removing an absent edge is a no-op and is not
// logged. A base edge is tombstoned; an overlay edge is spliced out of
// its row.
func (d *DeltaCSR) RemoveEdge(from, to int32) bool {
	d.checkEdge(from, to)
	k := edgeKey(from, to)
	if d.baseRowHasEdge(from, to) {
		if _, gone := d.dels[k]; gone {
			return false
		}
		d.dels[k] = struct{}{}
		d.delsPerRow[from]++
	} else {
		if _, ok := d.addSet[k]; !ok {
			return false
		}
		delete(d.addSet, k)
		row := d.adds[from]
		i := slices.Index(row, to)
		row = slices.Delete(row, i, i+1)
		if len(row) == 0 {
			delete(d.adds, from)
		} else {
			d.adds[from] = row
		}
		d.nAdds--
	}
	d.log = append(d.log, EdgeOp{From: from, To: to, Del: true})
	return true
}

// HasEdge reports whether from→to is effectively present: a non-tombstoned
// base edge or an overlay insert. O(log deg) via the sorted base row.
func (d *DeltaCSR) HasEdge(from, to int32) bool {
	d.checkEdge(from, to)
	if d.baseRowHasEdge(from, to) {
		_, gone := d.dels[edgeKey(from, to)]
		return !gone
	}
	_, ok := d.addSet[edgeKey(from, to)]
	return ok
}

// OutDegree returns the effective out-degree of dense node i in O(1).
func (d *DeltaCSR) OutDegree(i int) int {
	return d.base.OutDegree(i) - int(d.delsPerRow[int32(i)]) + len(d.adds[int32(i)])
}

// EachOut visits the effective successors of dense node i: the base row
// with tombstones skipped, then the overlay appends in insertion order.
// This is the row-visitor surface the push solver sweeps; unlike CSR.Out
// the merged row is not sorted (appends come last), which no solver kernel
// relies on — they only sum over the row.
func (d *DeltaCSR) EachOut(i int32, visit func(to int32)) {
	row := d.base.Out(int(i))
	if d.delsPerRow[i] == 0 {
		for _, t := range row {
			visit(t)
		}
	} else {
		for _, t := range row {
			if _, gone := d.dels[edgeKey(i, t)]; !gone {
				visit(t)
			}
		}
	}
	for _, t := range d.adds[i] {
		visit(t)
	}
}

// Touched returns the affected node frontier: the dense indexes of every
// node whose out-row changed since the base was frozen, ascending. These
// are exactly the nodes whose out-column of the PageRank operator moved —
// the seeds of a residual push.
func (d *DeltaCSR) Touched() []int32 {
	seen := make(map[int32]struct{}, len(d.log))
	out := make([]int32, 0, len(d.log))
	for _, op := range d.log {
		if _, ok := seen[op.From]; !ok {
			seen[op.From] = struct{}{}
			out = append(out, op.From)
		}
	}
	slices.Sort(out)
	return out
}

// Clone returns an independent copy of the overlay sharing the frozen
// base. Every row slice is deep-copied at exact capacity, so appends to
// the clone always reallocate and can never be observed through the
// original — the property that lets the blog layer publish one immutable
// view per link epoch while building the next epoch's view from it.
func (d *DeltaCSR) Clone() *DeltaCSR {
	c := &DeltaCSR{
		base:       d.base,
		adds:       make(map[int32][]int32, len(d.adds)),
		addSet:     make(map[int64]struct{}, len(d.addSet)),
		dels:       make(map[int64]struct{}, len(d.dels)),
		delsPerRow: make(map[int32]int32, len(d.delsPerRow)),
		log:        slices.Clip(slices.Clone(d.log)),
		nAdds:      d.nAdds,
	}
	for i, row := range d.adds {
		c.adds[i] = slices.Clip(slices.Clone(row))
	}
	for k := range d.addSet {
		c.addSet[k] = struct{}{}
	}
	for k := range d.dels {
		c.dels[k] = struct{}{}
	}
	for i, n := range d.delsPerRow {
		c.delsPerRow[i] = n
	}
	return c
}

// Compact merges the overlay into a fresh base CSR. The result is
// byte-identical to NewCSR built from the equivalent full edge list
// (asserted by FuzzDeltaCompaction): out-rows are produced by a linear
// merge of the sorted base row (tombstones skipped) with the sorted
// overlay row — no global re-sort — and in-rows by the same
// sources-ascending transpose NewCSR uses.
func (d *DeltaCSR) Compact() *CSR {
	n := d.base.NumNodes()
	c := &CSR{IDs: d.base.IDs, idx: d.base.idx}

	c.OutOff = make([]int32, n+1)
	c.OutTo = make([]int32, 0, d.NumEdges())
	scratch := make([]int32, 0, 16)
	for i := 0; i < n; i++ {
		src := int32(i)
		adds := append(scratch[:0], d.adds[src]...)
		scratch = adds
		slices.Sort(adds)
		base := d.base.Out(i)
		bi, ai := 0, 0
		for bi < len(base) || ai < len(adds) {
			switch {
			case ai == len(adds) || (bi < len(base) && base[bi] < adds[ai]):
				t := base[bi]
				bi++
				if d.delsPerRow[src] != 0 {
					if _, gone := d.dels[edgeKey(src, t)]; gone {
						continue
					}
				}
				c.OutTo = append(c.OutTo, t)
			default:
				c.OutTo = append(c.OutTo, adds[ai])
				ai++
			}
		}
		c.OutOff[i+1] = int32(len(c.OutTo))
	}
	c.OutTo = slices.Clip(c.OutTo)

	// Transpose exactly like NewCSR: iterate sources ascending so every
	// in-row comes out ascending without a second sort.
	c.InOff = make([]int32, n+1)
	for _, t := range c.OutTo {
		c.InOff[t+1]++
	}
	for i := 0; i < n; i++ {
		c.InOff[i+1] += c.InOff[i]
	}
	c.InFrom = make([]int32, len(c.OutTo))
	cursor := make([]int32, n)
	copy(cursor, c.InOff[:n])
	for i := int32(0); int(i) < n; i++ {
		for _, t := range c.OutTo[c.OutOff[i]:c.OutOff[i+1]] {
			c.InFrom[cursor[t]] = i
			cursor[t]++
		}
	}
	for i := 0; i < n; i++ {
		if c.OutOff[i] == c.OutOff[i+1] {
			c.Dangling = append(c.Dangling, int32(i))
		}
	}
	return c
}

// Flatten returns a plain CSR view of the effective graph: the base
// itself when the overlay is empty (no copy), a Compact() otherwise.
func (d *DeltaCSR) Flatten() *CSR {
	if len(d.log) == 0 {
		return d.base
	}
	return d.Compact()
}
