package trend

import (
	"fmt"
	"math"
	"testing"
	"time"

	"mass/internal/blog"
	"mass/internal/classify"
	"mass/internal/influence"
	"mass/internal/lexicon"
	"mass/internal/synth"
)

// risingCorpus plants a clear trend: Sports posting accelerates over the
// year, Economics fades; "latecomer" only posts in the second half.
func risingCorpus(t *testing.T) *blog.Corpus {
	t.Helper()
	c := blog.NewCorpus()
	for _, id := range []string{"sporty", "econ", "latecomer"} {
		if err := c.AddBlogger(&blog.Blogger{ID: blog.BloggerID(id)}); err != nil {
			t.Fatal(err)
		}
	}
	t0 := time.Date(2009, 1, 1, 0, 0, 0, 0, time.UTC)
	sports := lexicon.Vocabulary(lexicon.Sports)
	econ := lexicon.Vocabulary(lexicon.Economics)
	mkBody := func(vocab []string, i int) string {
		out := ""
		for j := 0; j < 12; j++ {
			out += vocab[(i*5+j)%len(vocab)] + " "
		}
		return out
	}
	n := 0
	addPost := func(author string, vocab []string, ts time.Time) {
		t.Helper()
		n++
		if err := c.AddPost(&blog.Post{
			ID: blog.PostID(fmt.Sprintf("p%03d", n)), Author: blog.BloggerID(author),
			Body: mkBody(vocab, n), Posted: ts,
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Month m (0..11): sports posts = m/3, econ posts = (11-m)/3.
	for m := 0; m < 12; m++ {
		ts := t0.AddDate(0, m, 1)
		for i := 0; i < m/3+1; i++ {
			addPost("sporty", sports, ts)
		}
		for i := 0; i < (11-m)/3+1; i++ {
			addPost("econ", econ, ts)
		}
		if m >= 6 {
			addPost("latecomer", sports, ts)
		}
	}
	return c
}

func analyzed(t *testing.T, c *blog.Corpus) *influence.Result {
	t.Helper()
	nb, err := classify.TrainNaiveBayes(synth.TrainingExamples(nil, 15, 3))
	if err != nil {
		t.Fatal(err)
	}
	// Novelty is disabled: the fixture's stride-sampled bodies repeat
	// vocabulary windows, and near-duplicate penalties are not what these
	// tests measure.
	an, err := influence.NewAnalyzer(influence.Config{IgnoreNovelty: true}, nb)
	if err != nil {
		t.Fatal(err)
	}
	res, err := an.Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTrendDetectsRisingAndFalling(t *testing.T) {
	c := risingCorpus(t)
	res := analyzed(t, c)
	rep, err := Analyze(c, res, Config{Buckets: 6})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Slopes[lexicon.Sports] <= 0 {
		t.Fatalf("Sports slope = %v, want positive", rep.Slopes[lexicon.Sports])
	}
	if rep.Slopes[lexicon.Economics] >= 0 {
		t.Fatalf("Economics slope = %v, want negative", rep.Slopes[lexicon.Economics])
	}
	if len(rep.Rising) == 0 || rep.Rising[0] != lexicon.Sports {
		t.Fatalf("Rising = %v, want Sports first", rep.Rising)
	}
	found := false
	for _, d := range rep.Falling {
		if d == lexicon.Economics {
			found = true
		}
	}
	if !found {
		t.Fatalf("Economics missing from Falling: %v", rep.Falling)
	}
}

func TestTrendSeriesShape(t *testing.T) {
	c := risingCorpus(t)
	res := analyzed(t, c)
	rep, err := Analyze(c, res, Config{Buckets: 4})
	if err != nil {
		t.Fatal(err)
	}
	s, ok := rep.DomainSeries[lexicon.Sports]
	if !ok {
		t.Fatal("no Sports series")
	}
	if len(s.Values) != 4 || s.Width <= 0 {
		t.Fatalf("series = %+v", s)
	}
	var total float64
	for _, v := range s.Values {
		if v < 0 {
			t.Fatal("negative bucket value")
		}
		total += v
	}
	if total <= 0 {
		t.Fatal("empty Sports series")
	}
}

func TestEmergingBlogger(t *testing.T) {
	c := risingCorpus(t)
	res := analyzed(t, c)
	rep, err := Analyze(c, res, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Emerging) == 0 {
		t.Fatal("no emerging bloggers")
	}
	if rep.Emerging[0].ID != "latecomer" {
		t.Fatalf("top emerging = %v, want latecomer", rep.Emerging[0])
	}
	if math.Abs(rep.Emerging[0].RecentShare-1) > 1e-9 {
		t.Fatalf("latecomer recent share = %v, want 1", rep.Emerging[0].RecentShare)
	}
}

func TestTrendErrors(t *testing.T) {
	c := blog.NewCorpus()
	res := &influence.Result{}
	if _, err := Analyze(c, res, Config{}); err == nil {
		t.Fatal("empty corpus must error")
	}
	if _, err := Analyze(risingCorpus(t), analyzed(t, risingCorpus(t)), Config{Buckets: 1}); err == nil {
		t.Fatal("1 bucket must error")
	}
	// Zero time span.
	c2 := blog.NewCorpus()
	_ = c2.AddBlogger(&blog.Blogger{ID: "a"})
	ts := time.Date(2009, 1, 1, 0, 0, 0, 0, time.UTC)
	_ = c2.AddPost(&blog.Post{ID: "p1", Author: "a", Body: "x", Posted: ts})
	_ = c2.AddPost(&blog.Post{ID: "p2", Author: "a", Body: "y", Posted: ts})
	an, _ := influence.NewAnalyzer(influence.Config{}, nil)
	res2, err := an.Analyze(c2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(c2, res2, Config{}); err == nil {
		t.Fatal("zero span must error")
	}
}

func TestSlope(t *testing.T) {
	if s := slope([]float64{1, 2, 3, 4}); math.Abs(s-1) > 1e-12 {
		t.Fatalf("slope = %v, want 1", s)
	}
	if s := slope([]float64{4, 3, 2, 1}); math.Abs(s+1) > 1e-12 {
		t.Fatalf("slope = %v, want -1", s)
	}
	if s := slope([]float64{2, 2, 2}); s != 0 {
		t.Fatalf("flat slope = %v", s)
	}
	if s := slope([]float64{5}); s != 0 {
		t.Fatalf("single-point slope = %v", s)
	}
}

func TestTrendOnSyntheticCorpus(t *testing.T) {
	// Smoke: the synthetic generator's timeline buckets cleanly.
	corpus, _, err := synth.Generate(synth.Config{Seed: 81, Bloggers: 50, Posts: 300})
	if err != nil {
		t.Fatal(err)
	}
	res := analyzed(t, corpus)
	rep, err := Analyze(corpus, res, Config{Buckets: 8, TopEmerging: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.DomainSeries) == 0 {
		t.Fatal("no domain series")
	}
	if len(rep.Emerging) != 3 {
		t.Fatalf("want 3 emerging, got %d", len(rep.Emerging))
	}
}
