// Package trend analyzes how domain interest and blogger influence move
// over time. The paper's introduction motivates MASS with exactly this:
// "communication and analysis of influential bloggers bring more insight
// of the key concerns and new trends of customers' interest on products".
//
// Given a corpus and a completed influence analysis, the trend analyzer
// buckets influence-weighted posting activity into fixed time windows,
// fits a least-squares slope per domain to find rising and falling
// interests, and surfaces emerging bloggers — those whose share of
// influence grew most between the older and the recent half of the
// window.
package trend

import (
	"fmt"
	"sort"
	"time"

	"mass/internal/blog"
	"mass/internal/influence"
)

// Config tunes the trend analysis.
type Config struct {
	// Buckets is the number of time windows the corpus span is divided
	// into. Default 8, minimum 2.
	Buckets int
	// TopEmerging bounds the emerging-blogger list. Default 5.
	TopEmerging int
}

func (c Config) withDefaults() Config {
	if c.Buckets == 0 {
		c.Buckets = 8
	}
	if c.TopEmerging == 0 {
		c.TopEmerging = 5
	}
	return c
}

// Series is one domain's influence-weighted activity per bucket.
type Series struct {
	Start  time.Time
	Width  time.Duration
	Values []float64
}

// EmergingBlogger is a blogger whose influence concentrated in the recent
// half of the corpus timeline.
type EmergingBlogger struct {
	ID blog.BloggerID
	// RecentShare is the fraction of the blogger's total post influence
	// produced in the recent half.
	RecentShare float64
	// Influence is the blogger's overall Inf(b), for context.
	Influence float64
}

// Report is the full trend analysis.
type Report struct {
	// DomainSeries maps each domain to its activity series.
	DomainSeries map[string]Series
	// Slopes is the least-squares slope of each domain series (activity
	// units per bucket); positive = rising interest.
	Slopes map[string]float64
	// Rising and Falling list domains by slope, strongest first.
	Rising, Falling []string
	// Emerging lists bloggers whose influence is concentrated recently.
	Emerging []EmergingBlogger
}

// Analyze buckets the corpus timeline and fits domain trends. res must
// come from an Analyzer with a classifier (PostDomains populated);
// otherwise only Emerging is computed and DomainSeries is empty.
func Analyze(c *blog.Corpus, res *influence.Result, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.Buckets < 2 {
		return nil, fmt.Errorf("trend: need at least 2 buckets")
	}
	posts := c.PostIDs()
	if len(posts) == 0 {
		return nil, fmt.Errorf("trend: empty corpus")
	}
	var minT, maxT time.Time
	for i, pid := range posts {
		ts := c.Posts[pid].Posted
		if i == 0 || ts.Before(minT) {
			minT = ts
		}
		if i == 0 || ts.After(maxT) {
			maxT = ts
		}
	}
	span := maxT.Sub(minT)
	if span <= 0 {
		return nil, fmt.Errorf("trend: corpus has no time span")
	}
	width := span / time.Duration(cfg.Buckets)
	bucketOf := func(ts time.Time) int {
		b := int(ts.Sub(minT) / width)
		if b >= cfg.Buckets {
			b = cfg.Buckets - 1
		}
		if b < 0 {
			b = 0
		}
		return b
	}

	report := &Report{
		DomainSeries: map[string]Series{},
		Slopes:       map[string]float64{},
	}

	// Domain activity series: post influence × domain posterior, streamed
	// off the result's dense posterior rows (no per-post map allocation).
	acc := map[string][]float64{}
	for _, pid := range posts {
		b := bucketOf(c.Posts[pid].Posted)
		w := res.PostScores[pid]
		res.EachPostDomain(pid, func(dom string, p float64) {
			if acc[dom] == nil {
				acc[dom] = make([]float64, cfg.Buckets)
			}
			acc[dom][b] += w * p
		})
	}
	for dom, vals := range acc {
		report.DomainSeries[dom] = Series{Start: minT, Width: width, Values: vals}
		report.Slopes[dom] = slope(vals)
	}
	domains := make([]string, 0, len(report.Slopes))
	for d := range report.Slopes {
		domains = append(domains, d)
	}
	sort.Slice(domains, func(i, j int) bool {
		si, sj := report.Slopes[domains[i]], report.Slopes[domains[j]]
		if si != sj {
			return si > sj
		}
		return domains[i] < domains[j]
	})
	for _, d := range domains {
		if report.Slopes[d] > 0 {
			report.Rising = append(report.Rising, d)
		} else if report.Slopes[d] < 0 {
			report.Falling = append(report.Falling, d)
		}
	}
	// Falling strongest first.
	for i, j := 0, len(report.Falling)-1; i < j; i, j = i+1, j-1 {
		report.Falling[i], report.Falling[j] = report.Falling[j], report.Falling[i]
	}

	// Emerging bloggers: influence share in the recent half.
	half := minT.Add(span / 2)
	recent := map[blog.BloggerID]float64{}
	total := map[blog.BloggerID]float64{}
	for _, pid := range posts {
		p := c.Posts[pid]
		w := res.PostScores[pid]
		total[p.Author] += w
		if !p.Posted.Before(half) {
			recent[p.Author] += w
		}
	}
	var emerging []EmergingBlogger
	for b, tot := range total {
		if tot <= 0 {
			continue
		}
		emerging = append(emerging, EmergingBlogger{
			ID:          b,
			RecentShare: recent[b] / tot,
			Influence:   res.BloggerScores[b],
		})
	}
	sort.Slice(emerging, func(i, j int) bool {
		// Prioritize recent concentration, then overall influence, then ID.
		if emerging[i].RecentShare != emerging[j].RecentShare {
			return emerging[i].RecentShare > emerging[j].RecentShare
		}
		if emerging[i].Influence != emerging[j].Influence {
			return emerging[i].Influence > emerging[j].Influence
		}
		return emerging[i].ID < emerging[j].ID
	})
	if len(emerging) > cfg.TopEmerging {
		emerging = emerging[:cfg.TopEmerging]
	}
	report.Emerging = emerging
	return report, nil
}

// slope fits y = a + b·x by least squares over x = 0..n-1 and returns b.
func slope(ys []float64) float64 {
	n := float64(len(ys))
	if n < 2 {
		return 0
	}
	var sumX, sumY, sumXY, sumXX float64
	for i, y := range ys {
		x := float64(i)
		sumX += x
		sumY += y
		sumXY += x * y
		sumXX += x * x
	}
	den := n*sumXX - sumX*sumX
	if den == 0 {
		return 0
	}
	return (n*sumXY - sumX*sumY) / den
}
