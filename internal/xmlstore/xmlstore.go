// Package xmlstore persists blogosphere corpora as XML, matching the
// paper's Crawler Module, which "stores the bloggers' information
// (including the bloggers' personal information, posts, and corresponding
// comments) in XML files".
//
// Two layouts are supported: a single snapshot file (Save/Load) and a
// sharded directory with one XML file per blogger (SaveShards/LoadShards),
// which is what a multi-threaded crawler naturally produces.
package xmlstore

import (
	"encoding/xml"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"mass/internal/blog"
)

// fileDoc is the on-disk schema of a snapshot file.
type fileDoc struct {
	XMLName  xml.Name       `xml:"blogosphere"`
	Bloggers []blog.Blogger `xml:"bloggers>blogger"`
	Posts    []blog.Post    `xml:"posts>post"`
	Links    []blog.Link    `xml:"links>link"`
}

// shardDoc is the on-disk schema of a per-blogger shard: the blogger, their
// posts, and their outgoing links.
type shardDoc struct {
	XMLName xml.Name     `xml:"space"`
	Blogger blog.Blogger `xml:"blogger"`
	Posts   []blog.Post  `xml:"posts>post"`
	Links   []blog.Link  `xml:"links>link"`
}

// Write encodes the corpus as a single XML document to w.
func Write(w io.Writer, c *blog.Corpus) error {
	doc := fileDoc{}
	for _, id := range c.BloggerIDs() {
		doc.Bloggers = append(doc.Bloggers, *c.Bloggers[id])
	}
	for _, id := range c.PostIDs() {
		doc.Posts = append(doc.Posts, *c.Posts[id])
	}
	doc.Links = append(doc.Links, c.Links...)
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("xmlstore: encode: %w", err)
	}
	return enc.Flush()
}

// Read decodes a corpus from a single XML document, rebuilding all indexes
// and validating referential integrity.
func Read(r io.Reader) (*blog.Corpus, error) {
	var doc fileDoc
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("xmlstore: decode: %w", err)
	}
	return assemble(doc.Bloggers, doc.Posts, doc.Links)
}

// Save writes the corpus snapshot to path, creating parent directories.
func Save(path string, c *blog.Corpus) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, c); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a corpus snapshot from path.
func Load(path string) (*blog.Corpus, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// SaveShards writes one XML file per blogger into dir (created if needed).
// File names are sanitized blogger IDs with an .xml suffix.
func SaveShards(dir string, c *blog.Corpus) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	outBy := map[blog.BloggerID][]blog.Link{}
	for _, l := range c.Links {
		outBy[l.From] = append(outBy[l.From], l)
	}
	for _, id := range c.BloggerIDs() {
		doc := shardDoc{Blogger: *c.Bloggers[id]}
		for _, pid := range c.PostsBy(id) {
			doc.Posts = append(doc.Posts, *c.Posts[pid])
		}
		doc.Links = outBy[id]
		path := filepath.Join(dir, sanitize(string(id))+".xml")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if _, err := io.WriteString(f, xml.Header); err != nil {
			f.Close()
			return err
		}
		enc := xml.NewEncoder(f)
		enc.Indent("", "  ")
		if err := enc.Encode(doc); err != nil {
			f.Close()
			return fmt.Errorf("xmlstore: shard %s: %w", id, err)
		}
		if err := enc.Flush(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// LoadShards reads every *.xml shard in dir and assembles the corpus.
func LoadShards(dir string) (*blog.Corpus, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var bloggers []blog.Blogger
	var posts []blog.Post
	var links []blog.Link
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".xml") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		var doc shardDoc
		err = xml.NewDecoder(f).Decode(&doc)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("xmlstore: shard %s: %w", name, err)
		}
		bloggers = append(bloggers, doc.Blogger)
		posts = append(posts, doc.Posts...)
		links = append(links, doc.Links...)
	}
	return assemble(bloggers, posts, links)
}

// assemble builds a validated corpus from decoded parts.
func assemble(bloggers []blog.Blogger, posts []blog.Post, links []blog.Link) (*blog.Corpus, error) {
	c := blog.NewCorpus()
	for i := range bloggers {
		b := bloggers[i]
		if err := c.AddBlogger(&b); err != nil {
			return nil, fmt.Errorf("xmlstore: %w", err)
		}
	}
	for i := range posts {
		p := posts[i]
		if err := c.AddPost(&p); err != nil {
			return nil, fmt.Errorf("xmlstore: %w", err)
		}
	}
	for _, l := range links {
		if err := c.AddLink(l.From, l.To); err != nil {
			return nil, fmt.Errorf("xmlstore: %w", err)
		}
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("xmlstore: %w", err)
	}
	return c, nil
}

// sanitize maps a blogger ID to a safe file name.
func sanitize(id string) string {
	var b strings.Builder
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		default:
			b.WriteRune('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}
