package xmlstore

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"mass/internal/blog"
)

func TestRoundTripBuffer(t *testing.T) {
	c := blog.Figure1Corpus()
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<blogosphere>") {
		t.Fatal("missing root element")
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertCorpusEqual(t, c, got)
}

func TestRoundTripFile(t *testing.T) {
	c := blog.Figure1Corpus()
	path := filepath.Join(t.TempDir(), "nested", "corpus.xml")
	if err := Save(path, c); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	assertCorpusEqual(t, c, got)
}

func TestRoundTripShards(t *testing.T) {
	c := blog.Figure1Corpus()
	dir := t.TempDir()
	if err := SaveShards(dir, c); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(c.Bloggers) {
		t.Fatalf("want %d shards, got %d", len(c.Bloggers), len(entries))
	}
	got, err := LoadShards(dir)
	if err != nil {
		t.Fatal(err)
	}
	assertCorpusEqual(t, c, got)
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.xml")); err == nil {
		t.Fatal("missing file must error")
	}
	if _, err := LoadShards(filepath.Join(t.TempDir(), "nodir")); err == nil {
		t.Fatal("missing dir must error")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("this is not xml")); err == nil {
		t.Fatal("garbage must error")
	}
}

func TestReadRejectsDanglingReferences(t *testing.T) {
	doc := `<?xml version="1.0"?>
<blogosphere>
  <bloggers><blogger id="a"><name>A</name><profile></profile></blogger></bloggers>
  <posts><post id="p1" author="ghost"><title>t</title><body>b</body></post></posts>
  <links></links>
</blogosphere>`
	if _, err := Read(strings.NewReader(doc)); err == nil {
		t.Fatal("post with unknown author must be rejected")
	}
}

func TestReadRejectsDuplicateBlogger(t *testing.T) {
	doc := `<?xml version="1.0"?>
<blogosphere>
  <bloggers>
    <blogger id="a"><name>A</name><profile></profile></blogger>
    <blogger id="a"><name>A2</name><profile></profile></blogger>
  </bloggers>
  <posts></posts><links></links>
</blogosphere>`
	if _, err := Read(strings.NewReader(doc)); err == nil {
		t.Fatal("duplicate blogger must be rejected")
	}
}

func TestXMLEscaping(t *testing.T) {
	c := blog.NewCorpus()
	if err := c.AddBlogger(&blog.Blogger{ID: "weird<>&", Name: `quotes "and" <tags>`}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddPost(&blog.Post{ID: "p", Author: "weird<>&",
		Body: "text with <angle> & ampersand \"quotes\""}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertCorpusEqual(t, c, got)
}

func TestShardFileNameSanitization(t *testing.T) {
	c := blog.NewCorpus()
	if err := c.AddBlogger(&blog.Blogger{ID: "user/with:odd*chars"}); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := SaveShards(dir, c); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || strings.ContainsAny(entries[0].Name(), "/:*") {
		t.Fatalf("shard name not sanitized: %v", entries)
	}
	got, err := LoadShards(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got.Bloggers["user/with:odd*chars"]; !ok {
		t.Fatal("original ID must survive inside the shard")
	}
}

func TestTagsSurviveRoundTrip(t *testing.T) {
	c := blog.NewCorpus()
	if err := c.AddBlogger(&blog.Blogger{ID: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddPost(&blog.Post{ID: "p", Author: "a", Body: "b",
		Tags: []string{"travel", "beach"}}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Posts["p"].Tags, []string{"travel", "beach"}) {
		t.Fatalf("tags = %v", got.Posts["p"].Tags)
	}
}

func TestTrueDomainSurvivesRoundTrip(t *testing.T) {
	c := blog.Figure1Corpus()
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Posts["post2"].TrueDomain != "Economics" {
		t.Fatalf("TrueDomain lost: %q", got.Posts["post2"].TrueDomain)
	}
}

// assertCorpusEqual compares two corpora structurally.
func assertCorpusEqual(t *testing.T, want, got *blog.Corpus) {
	t.Helper()
	if err := got.Validate(); err != nil {
		t.Fatalf("loaded corpus invalid: %v", err)
	}
	if !reflect.DeepEqual(want.BloggerIDs(), got.BloggerIDs()) {
		t.Fatalf("blogger IDs differ:\nwant %v\ngot  %v", want.BloggerIDs(), got.BloggerIDs())
	}
	if !reflect.DeepEqual(want.PostIDs(), got.PostIDs()) {
		t.Fatalf("post IDs differ:\nwant %v\ngot  %v", want.PostIDs(), got.PostIDs())
	}
	for _, id := range want.BloggerIDs() {
		w, g := want.Bloggers[id], got.Bloggers[id]
		if w.Name != g.Name || w.Profile != g.Profile || !reflect.DeepEqual(w.Friends, g.Friends) {
			t.Fatalf("blogger %s differs: %+v vs %+v", id, w, g)
		}
	}
	for _, id := range want.PostIDs() {
		w, g := want.Posts[id], got.Posts[id]
		if w.Title != g.Title || w.Body != g.Body || w.Author != g.Author || w.TrueDomain != g.TrueDomain {
			t.Fatalf("post %s differs", id)
		}
		if !reflect.DeepEqual(w.Tags, g.Tags) {
			t.Fatalf("post %s tags differ: %v vs %v", id, w.Tags, g.Tags)
		}
		if len(w.Comments) != len(g.Comments) {
			t.Fatalf("post %s comment count differs: %d vs %d", id, len(w.Comments), len(g.Comments))
		}
		for i := range w.Comments {
			if w.Comments[i].Commenter != g.Comments[i].Commenter || w.Comments[i].Text != g.Comments[i].Text {
				t.Fatalf("post %s comment %d differs", id, i)
			}
			if !w.Comments[i].Posted.Equal(g.Comments[i].Posted) {
				t.Fatalf("post %s comment %d timestamp differs", id, i)
			}
		}
	}
	if len(want.Links) != len(got.Links) {
		t.Fatalf("link count differs: %d vs %d", len(want.Links), len(got.Links))
	}
	for _, id := range want.BloggerIDs() {
		if want.TotalComments(id) != got.TotalComments(id) {
			t.Fatalf("TotalComments(%s) differs", id)
		}
	}
}
