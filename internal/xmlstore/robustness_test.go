package xmlstore

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"mass/internal/blog"
)

// Property: Read never panics and never returns an invalid corpus, no
// matter what bytes it is fed.
func TestReadNeverPanicsOnGarbage(t *testing.T) {
	f := func(data []byte) bool {
		c, err := Read(bytes.NewReader(data))
		if err != nil {
			return true // rejection is fine
		}
		return c.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: any corpus that round-trips produces identical blogger and
// post ID sets (structure preservation under arbitrary string content).
func TestRoundTripPropertyArbitraryStrings(t *testing.T) {
	f := func(name, profile, title, body, comment string) bool {
		// XML cannot carry most control characters; the store is only
		// required to round-trip what XML can express.
		if !validXML(name) || !validXML(profile) || !validXML(title) ||
			!validXML(body) || !validXML(comment) {
			return true
		}
		c := blog.NewCorpus()
		if err := c.AddBlogger(&blog.Blogger{ID: "a", Name: name, Profile: profile}); err != nil {
			return false
		}
		if err := c.AddBlogger(&blog.Blogger{ID: "b"}); err != nil {
			return false
		}
		if err := c.AddPost(&blog.Post{ID: "p", Author: "a", Title: title, Body: body,
			Comments: []blog.Comment{{Commenter: "b", Text: comment}}}); err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := Write(&buf, c); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		p := got.Posts["p"]
		return got.Bloggers["a"].Name == name &&
			got.Bloggers["a"].Profile == profile &&
			p.Title == title && p.Body == body &&
			p.Comments[0].Text == comment
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// validXML reports whether s consists only of characters XML 1.0 can
// represent (encoding/xml rejects the rest at encode time).
func validXML(s string) bool {
	for _, r := range s {
		if r == 0x9 || r == 0xA || r == 0xD {
			continue
		}
		if r >= 0x20 && r <= 0xD7FF {
			continue
		}
		if r >= 0xE000 && r <= 0xFFFD {
			continue
		}
		if r >= 0x10000 && r <= 0x10FFFF {
			continue
		}
		return false
	}
	// Carriage returns are normalized to newlines by XML parsing; treat
	// strings containing them as out of scope for exact round-trip.
	return !strings.ContainsRune(s, '\r')
}
