package query

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Wire shape of the AST. Every field is optional except entity; unknown
// fields are rejected (DisallowUnknownFields), so a typo in a clause name
// is a decode error, never a silently ignored filter.
//
//	{
//	  "entity": "bloggers" | "posts" | "domains",
//	  "where": <predicate>,
//	  "orderBy": [{"field": "...", "weights": {...}, "desc": true}, ...],
//	  "select": ["field", ...],
//	  "limit": N, "offset": N,
//	  "aggregate": {"op": "count"|"sum"|"mean", "field": "..."}
//	}
//
// A predicate is either a composite — exactly one of
// {"and": [...]}, {"or": [...]}, {"not": {...}} — or a comparison
// {"field": "...", "op": "eq|ne|lt|le|gt|ge", "value": ...} where value
// is a number, an RFC3339 string for "posted", or a plain string for
// "author". The "interest" field carries {"weights": {domain: weight}}.
type wireQuery struct {
	Entity    string      `json:"entity"`
	Where     *wirePred   `json:"where,omitempty"`
	OrderBy   []wireOrder `json:"orderBy,omitempty"`
	Select    []string    `json:"select,omitempty"`
	Limit     int         `json:"limit,omitempty"`
	Offset    int         `json:"offset,omitempty"`
	Aggregate *wireAgg    `json:"aggregate,omitempty"`
}

type wirePred struct {
	And []wirePred `json:"and,omitempty"`
	Or  []wirePred `json:"or,omitempty"`
	Not *wirePred  `json:"not,omitempty"`

	Field   string             `json:"field,omitempty"`
	Weights map[string]float64 `json:"weights,omitempty"`
	Op      string             `json:"op,omitempty"`
	Value   json.RawMessage    `json:"value,omitempty"`
}

type wireOrder struct {
	Field   string             `json:"field"`
	Weights map[string]float64 `json:"weights,omitempty"`
	Desc    bool               `json:"desc,omitempty"`
}

type wireAgg struct {
	Op    string `json:"op"`
	Field string `json:"field,omitempty"`
}

// Decode parses and validates a JSON query. The decoder is strict:
// unknown fields, trailing data and malformed values are errors, and the
// returned query is already normalized (defaults applied, fields
// resolved), so a nil error means the query is executable.
func Decode(data []byte) (*Query, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var w wireQuery
	if err := dec.Decode(&w); err != nil {
		return nil, fmt.Errorf("query: %w", err)
	}
	if err := requireEOF(dec); err != nil {
		return nil, err
	}
	q, err := w.toQuery()
	if err != nil {
		return nil, err
	}
	return q.Normalize()
}

func requireEOF(dec *json.Decoder) error {
	if _, err := dec.Token(); err != io.EOF {
		return fmt.Errorf("query: trailing data after the query object")
	}
	return nil
}

func (w wireQuery) toQuery() (*Query, error) {
	q := &Query{
		Entity: Entity(w.Entity),
		Select: w.Select,
		Limit:  w.Limit,
		Offset: w.Offset,
	}
	if w.Where != nil {
		p, err := w.Where.toPredicate(0)
		if err != nil {
			return nil, err
		}
		q.Where = p
	}
	for _, o := range w.OrderBy {
		q.OrderBy = append(q.OrderBy, Order{
			Field: Field{Name: o.Field, Weights: o.Weights},
			Desc:  o.Desc,
		})
	}
	if w.Aggregate != nil {
		q.Aggregate = &Aggregate{Op: AggOp(w.Aggregate.Op), Field: w.Aggregate.Field}
	}
	return q, nil
}

func (w *wirePred) toPredicate(depth int) (*Predicate, error) {
	if depth > maxDepth {
		return nil, fmt.Errorf("query: predicate nesting deeper than %d", maxDepth)
	}
	composite := 0
	if w.And != nil {
		composite++
	}
	if w.Or != nil {
		composite++
	}
	if w.Not != nil {
		composite++
	}
	leaf := w.Field != "" || w.Op != "" || w.Value != nil || len(w.Weights) > 0
	if composite > 1 || (composite == 1 && leaf) || (composite == 0 && !leaf) {
		return nil, fmt.Errorf("query: predicate must be exactly one of and/or/not or a {field, op, value} comparison")
	}
	p := &Predicate{}
	switch {
	case w.And != nil:
		for i := range w.And {
			kid, err := w.And[i].toPredicate(depth + 1)
			if err != nil {
				return nil, err
			}
			p.And = append(p.And, kid)
		}
	case w.Or != nil:
		for i := range w.Or {
			kid, err := w.Or[i].toPredicate(depth + 1)
			if err != nil {
				return nil, err
			}
			p.Or = append(p.Or, kid)
		}
	case w.Not != nil:
		kid, err := w.Not.toPredicate(depth + 1)
		if err != nil {
			return nil, err
		}
		p.Not = kid
	default:
		cmp, err := w.toComparison()
		if err != nil {
			return nil, err
		}
		p.Cmp = cmp
	}
	return p, nil
}

func (w *wirePred) toComparison() (*Comparison, error) {
	if w.Field == "" {
		return nil, fmt.Errorf("query: comparison is missing its field")
	}
	if w.Value == nil {
		return nil, fmt.Errorf("query: comparison on %q is missing its value", w.Field)
	}
	c := &Comparison{
		Field: Field{Name: w.Field, Weights: w.Weights},
		Op:    Op(w.Op),
	}
	// The value's JSON type picks the kind; Normalize later checks it
	// against what the field expects.
	var num float64
	if err := json.Unmarshal(w.Value, &num); err == nil {
		c.Kind, c.Num = kindNumber, num
		return c, nil
	}
	var s string
	if err := json.Unmarshal(w.Value, &s); err != nil {
		return nil, fmt.Errorf("query: value for %q must be a number or a string", w.Field)
	}
	if w.Field == FieldPosted {
		t, err := time.Parse(time.RFC3339, s)
		if err != nil {
			return nil, fmt.Errorf("query: value for %q must be RFC3339: %v", w.Field, err)
		}
		c.Kind, c.Time = kindTime, t
		return c, nil
	}
	c.Kind, c.Str = kindString, s
	return c, nil
}

// ----------------------------------------------------------------- encode

// MarshalJSON encodes the query in its wire shape, so a builder-made
// query can be sent to POST /api/v1/query verbatim (and so Key() has a
// canonical serialization: encoding/json sorts map keys).
func (q *Query) MarshalJSON() ([]byte, error) {
	w := wireQuery{
		Entity: string(q.Entity),
		Select: q.Select,
		Limit:  q.Limit,
		Offset: q.Offset,
	}
	if q.Where != nil {
		wp, err := fromPredicate(q.Where)
		if err != nil {
			return nil, err
		}
		w.Where = wp
	}
	for _, o := range q.OrderBy {
		w.OrderBy = append(w.OrderBy, wireOrder{Field: o.Field.Name, Weights: o.Field.Weights, Desc: o.Desc})
	}
	if q.Aggregate != nil {
		w.Aggregate = &wireAgg{Op: string(q.Aggregate.Op), Field: q.Aggregate.Field}
	}
	type plain wireQuery // avoid recursing into this method
	return json.Marshal(plain(w))
}

func fromPredicate(p *Predicate) (*wirePred, error) {
	if p == nil {
		return nil, nil
	}
	w := &wirePred{}
	switch {
	case len(p.And) > 0:
		for _, kid := range p.And {
			wk, err := fromPredicate(kid)
			if err != nil {
				return nil, err
			}
			w.And = append(w.And, *wk)
		}
	case len(p.Or) > 0:
		for _, kid := range p.Or {
			wk, err := fromPredicate(kid)
			if err != nil {
				return nil, err
			}
			w.Or = append(w.Or, *wk)
		}
	case p.Not != nil:
		wk, err := fromPredicate(p.Not)
		if err != nil {
			return nil, err
		}
		w.Not = wk
	case p.Cmp != nil:
		c := p.Cmp
		w.Field, w.Weights, w.Op = c.Field.Name, c.Field.Weights, string(c.Op)
		var v any
		switch c.Kind {
		case kindTime:
			v = c.Time.Format(time.RFC3339)
		case kindString:
			v = c.Str
		default:
			v = c.Num
		}
		raw, err := json.Marshal(v)
		if err != nil {
			return nil, err
		}
		w.Value = raw
	default:
		return nil, fmt.Errorf("query: empty predicate node")
	}
	return w, nil
}

// JSONSchema returns a JSON-Schema (draft 2020-12) description of the
// wire AST, published in the OpenAPI spec for POST /api/v1/query.
func JSONSchema() map[string]any {
	num := map[string]any{"type": "number"}
	weights := map[string]any{
		"type":                 "object",
		"description":          "domain → weight vector for the interest field",
		"additionalProperties": num,
	}
	fieldDesc := "facet name: influence|ap|gl|posts (bloggers), influence|quality|novelty|sentiment|comments|posted|author (posts), count|sum|mean (domains), domain:<name>, or interest (with weights)"
	predicate := map[string]any{
		"type":        "object",
		"description": "exactly one of and/or/not, or a {field, op, value} comparison",
		"properties": map[string]any{
			"and":     map[string]any{"type": "array", "items": map[string]any{"$ref": "#/$defs/predicate"}},
			"or":      map[string]any{"type": "array", "items": map[string]any{"$ref": "#/$defs/predicate"}},
			"not":     map[string]any{"$ref": "#/$defs/predicate"},
			"field":   map[string]any{"type": "string", "description": fieldDesc},
			"weights": weights,
			"op":      map[string]any{"type": "string", "enum": []string{"eq", "ne", "lt", "le", "gt", "ge"}},
			"value": map[string]any{
				"description": "number; RFC3339 string for posted; plain string for author (eq/ne only)",
				"oneOf":       []any{num, map[string]any{"type": "string"}},
			},
		},
		"additionalProperties": false,
	}
	order := map[string]any{
		"type": "object",
		"properties": map[string]any{
			"field":   map[string]any{"type": "string", "description": fieldDesc},
			"weights": weights,
			"desc":    map[string]any{"type": "boolean"},
		},
		"required":             []string{"field"},
		"additionalProperties": false,
	}
	aggregate := map[string]any{
		"type":        "object",
		"description": "group the filtered entities per domain",
		"properties": map[string]any{
			"op":    map[string]any{"type": "string", "enum": []string{"count", "sum", "mean"}},
			"field": map[string]any{"type": "string", "description": "aggregated facet; empty means the per-domain weight"},
		},
		"required":             []string{"op"},
		"additionalProperties": false,
	}
	return map[string]any{
		"$schema":     "https://json-schema.org/draft/2020-12/schema",
		"title":       "MASS query AST",
		"type":        "object",
		"description": "One composable query over the analyzed blogosphere; unknown fields are rejected (400 invalid_query).",
		"properties": map[string]any{
			"entity":    map[string]any{"type": "string", "enum": []string{"bloggers", "posts", "domains"}},
			"where":     map[string]any{"$ref": "#/$defs/predicate"},
			"orderBy":   map[string]any{"type": "array", "items": order},
			"select":    map[string]any{"type": "array", "items": map[string]any{"type": "string"}},
			"limit":     map[string]any{"type": "integer", "minimum": 1},
			"offset":    map[string]any{"type": "integer", "minimum": 0},
			"aggregate": aggregate,
		},
		"required":             []string{"entity"},
		"additionalProperties": false,
		"$defs":                map[string]any{"predicate": predicate},
	}
}
