package query

import (
	"hash/fnv"
	"reflect"
	"testing"

	"mass/internal/blog"
)

// virtualOwners partitions the fixture's bloggers into nparts disjoint
// ownership filters over the SAME snapshot. Because every virtual shard
// sees identical dense scores, running ExecuteShard once per part and
// merging must reproduce the single-engine Execute result exactly — this
// isolates the scatter/merge machinery from per-shard analysis drift.
func virtualOwners(nparts int) []func(string) bool {
	owner := func(id string) int {
		h := fnv.New64a()
		h.Write([]byte(id))
		return int(h.Sum64() % uint64(nparts))
	}
	owners := make([]func(string) bool, nparts)
	for p := 0; p < nparts; p++ {
		p := p
		owners[p] = func(id string) bool { return owner(id) == p }
	}
	return owners
}

// postOwners routes each post by its author's owner, mirroring the real
// cluster routing where a post lives on its author's shard.
func postOwners(c *blog.Corpus, owners []func(string) bool) []func(string) bool {
	out := make([]func(string) bool, len(owners))
	for p := range owners {
		bown := owners[p]
		out[p] = func(id string) bool {
			post, ok := c.Posts[blog.PostID(id)]
			if !ok {
				return false
			}
			return bown(string(post.Author))
		}
	}
	return out
}

func scatterScan(t *testing.T, q *Query, nparts int) *Result {
	t.Helper()
	f := testFixture(t)
	owners := virtualOwners(nparts)
	if q.Entity == EntityPosts {
		owners = postOwners(f.c, owners)
	}
	parts := make([]*ShardResult, nparts)
	for p := 0; p < nparts; p++ {
		var err error
		parts[p], err = ExecuteShard(f.c, f.res, q, owners[p])
		if err != nil {
			t.Fatalf("ExecuteShard part %d: %v", p, err)
		}
	}
	merged, err := MergeShardRows(parts, q)
	if err != nil {
		t.Fatalf("MergeShardRows: %v", err)
	}
	return merged
}

// TestShardScanMergeExact: scatter + k-way merge over disjoint ownership
// partitions must equal the single-engine scan row-for-row (IDs, scores,
// projected fields, totals) for every query shape that hits the scan path.
func TestShardScanMergeExact(t *testing.T) {
	dom := someDomain(t)
	queries := map[string]*Query{
		"top influence": Bloggers().OrderBy(Desc(FieldInfluence)).Limit(15).Build(),
		"filtered gl": Bloggers().
			Where(F(FieldGL).Gt(0)).
			OrderBy(Desc(FieldInfluence)).Limit(10).Build(),
		"domain key offset": Bloggers().
			OrderBy(Desc(DomainKey(dom))).Limit(7).Offset(3).
			Select(FieldAP, FieldGL).Build(),
		"asc posts": Bloggers().OrderBy(Asc(FieldPosts)).Limit(12).Build(),
		"posts by quality": Posts().
			Where(F(FieldQuality).Ge(0)).
			OrderBy(Desc(FieldQuality)).Limit(20).Build(),
	}
	for name, q := range queries {
		t.Run(name, func(t *testing.T) {
			want := mustExecute(t, q)
			for _, nparts := range []int{1, 2, 5} {
				got := scatterScan(t, q, nparts)
				if got.Total != want.Total {
					t.Fatalf("%d parts: total %d, want %d", nparts, got.Total, want.Total)
				}
				if !reflect.DeepEqual(got.Rows, want.Rows) {
					t.Fatalf("%d parts: rows diverge\n got: %+v\nwant: %+v", nparts, got.Rows, want.Rows)
				}
			}
		})
	}
}

// TestShardScanDegraded: a nil part (a shard that missed its deadline)
// must drop out of the merge, not wedge or corrupt it.
func TestShardScanDegraded(t *testing.T) {
	f := testFixture(t)
	q := Bloggers().OrderBy(Desc(FieldInfluence)).Limit(10).Build()
	owners := virtualOwners(3)
	parts := make([]*ShardResult, 3)
	for p := 0; p < 3; p++ {
		var err error
		parts[p], err = ExecuteShard(f.c, f.res, q, owners[p])
		if err != nil {
			t.Fatal(err)
		}
	}
	full, err := MergeShardRows(parts, q)
	if err != nil {
		t.Fatal(err)
	}
	lost := parts[1].Total
	parts[1] = nil
	partial, err := MergeShardRows(parts, q)
	if err != nil {
		t.Fatal(err)
	}
	if partial.Total != full.Total-lost {
		t.Fatalf("degraded total %d, want %d", partial.Total, full.Total-lost)
	}
	for _, r := range partial.Rows {
		if !owners[0](r.ID) && !owners[2](r.ID) {
			t.Fatalf("row %q came from the dropped part", r.ID)
		}
	}
}

// rowsAlmostEqual compares row lists allowing last-ulp drift: merging
// per-shard partials reassociates float sums, so values can differ from
// the single-pass result by ~1 ulp even though the math is the same.
func rowsAlmostEqual(t *testing.T, got, want []Row) {
	t.Helper()
	const tol = 1e-9
	if len(got) != len(want) {
		t.Fatalf("row count %d, want %d\n got: %+v\nwant: %+v", len(got), len(want), got, want)
	}
	close := func(a, b float64) bool {
		d := a - b
		if d < 0 {
			d = -d
		}
		m := 1.0
		if b > m || -b > m {
			m = b
			if m < 0 {
				m = -m
			}
		}
		return d <= tol*m
	}
	for i := range want {
		if got[i].ID != want[i].ID {
			t.Fatalf("row %d: ID %q, want %q", i, got[i].ID, want[i].ID)
		}
		if !close(got[i].Score, want[i].Score) {
			t.Fatalf("row %d (%s): score %v, want %v", i, got[i].ID, got[i].Score, want[i].Score)
		}
		if len(got[i].Fields) != len(want[i].Fields) {
			t.Fatalf("row %d (%s): fields %v, want %v", i, got[i].ID, got[i].Fields, want[i].Fields)
		}
		for k, wv := range want[i].Fields {
			if gv, ok := got[i].Fields[k]; !ok || !close(gv, wv) {
				t.Fatalf("row %d (%s): field %s = %v, want %v", i, got[i].ID, k, gv, wv)
			}
		}
	}
}

// TestShardAggregateMergeExact: per-shard (count, sum) slabs merged by
// name union must reproduce the single-engine aggregate values for
// count, sum and mean.
func TestShardAggregateMergeExact(t *testing.T) {
	f := testFixture(t)
	for name, q := range map[string]*Query{
		"count bloggers": Bloggers().AggregatePerDomain(AggCount, "").Limit(50).Build(),
		"sum posts":      Posts().AggregatePerDomain(AggSum, "").Limit(50).Build(),
		"mean influence": Bloggers().AggregatePerDomain(AggMean, FieldInfluence).Limit(50).Build(),
		"filtered count": Posts().
			Where(F(FieldQuality).Gt(0)).
			AggregatePerDomain(AggCount, "").Limit(50).Build(),
	} {
		t.Run(name, func(t *testing.T) {
			want := mustExecute(t, q)
			owners := virtualOwners(3)
			if q.Entity == EntityPosts {
				owners = postOwners(f.c, owners)
			}
			slabs := make([]*AggSlab, 3)
			for p := 0; p < 3; p++ {
				var err error
				slabs[p], err = ExecuteAggregateSlab(f.c, f.res, q, owners[p])
				if err != nil {
					t.Fatal(err)
				}
			}
			names, counts, sums := MergeAggSlabs(slabs)
			got, err := ExecuteAggregateMerged(names, counts, sums, q)
			if err != nil {
				t.Fatal(err)
			}
			rowsAlmostEqual(t, got.Rows, want.Rows)
		})
	}
}

// TestShardDomainsMergeExact: domain-entity partials merged across
// ownership partitions equal the single-engine domains executor.
func TestShardDomainsMergeExact(t *testing.T) {
	f := testFixture(t)
	for name, q := range map[string]*Query{
		"default":        Domains().Limit(50).Build(),
		"by mean":        Domains().OrderBy(Desc(FieldMean)).Limit(50).Build(),
		"filtered count": Domains().Where(F(FieldCount).Gt(1)).Limit(50).Build(),
	} {
		t.Run(name, func(t *testing.T) {
			want := mustExecute(t, q)
			owners := virtualOwners(4)
			slabs := make([]*AggSlab, 4)
			for p := 0; p < 4; p++ {
				var err error
				slabs[p], err = ExecuteDomainsSlab(f.c, f.res, q, owners[p])
				if err != nil {
					t.Fatal(err)
				}
			}
			names, counts, sums := MergeAggSlabs(slabs)
			got, err := ExecuteDomainsMerged(names, counts, sums, q)
			if err != nil {
				t.Fatal(err)
			}
			if got.Total != want.Total {
				t.Fatalf("total %d, want %d", got.Total, want.Total)
			}
			rowsAlmostEqual(t, got.Rows, want.Rows)
		})
	}
}

// TestShardRejectsSlabEntities: ExecuteShard must refuse the shapes that
// merge as slabs.
func TestShardRejectsSlabEntities(t *testing.T) {
	f := testFixture(t)
	for _, q := range []*Query{
		Domains().Limit(5).Build(),
		Bloggers().AggregatePerDomain(AggCount, "").Limit(5).Build(),
	} {
		if _, err := ExecuteShard(f.c, f.res, q, nil); err == nil {
			t.Fatalf("ExecuteShard accepted %+v", q)
		}
	}
}
