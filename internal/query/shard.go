package query

// Shard-side execution: the pieces of the executor a scatter-gather
// coordinator needs to run one query as per-shard sub-plans and merge the
// results exactly. Scans return their top rows with the ORDER BY key
// values attached (ShardRow.Keys) so the merge can compare rows across
// shards without re-resolving facets; per-domain aggregations return raw
// (count, sum) partials (AggSlab) because count and sum merge
// associatively while mean does not — mean is always derived after the
// merge.

import (
	"fmt"
	"slices"
	"sort"
	"strings"
)

import (
	"mass/internal/blog"
	"mass/internal/influence"
)

// ShardRow is one shard-local result row plus the value of every ORDER BY
// key at that row, in the normalized query's key order.
type ShardRow struct {
	Row
	Keys []float64 `json:"keys"`
}

// ShardResult is the shard-local portion of a scan: the top
// (Offset + Limit) matching rows already in merge order — the query's keys
// with their desc flags, ties by ascending ID — plus the shard's total
// match count. Offset windowing is deliberately NOT applied; every shard
// must contribute its full top-(Offset+Limit) prefix or the merged window
// could miss rows.
type ShardResult struct {
	Entity Entity     `json:"entity"`
	Rows   []ShardRow `json:"rows"`
	Total  int        `json:"total"`
	Plan   string     `json:"plan"`
}

// ExecuteShard runs the scan portion of q against one shard's snapshot.
// own, when non-nil, restricts rows and totals to entities the shard owns:
// shards admit foreign bloggers as link stubs, and per-shard analysis
// assigns those stubs real scores, so an unfiltered broadcast would return
// the same blogger ID from several shards. Posts never need the filter (a
// post lives only on its author's owner shard), so coordinators pass nil
// there. Domains and aggregate queries have no per-row scan; they go
// through ExecuteDomainsSlab / ExecuteAggregateSlab instead.
func ExecuteShard(c *blog.Corpus, res *influence.Result, q *Query, own func(string) bool) (*ShardResult, error) {
	if c == nil || res == nil {
		return nil, fmt.Errorf("query: corpus and result required")
	}
	n, err := q.Normalize()
	if err != nil {
		return nil, err
	}
	if n.Entity == EntityDomains || n.Aggregate != nil {
		return nil, fmt.Errorf("query: %s/aggregate queries merge as slabs, not rows", n.Entity)
	}
	v := &view{c: c, res: res, d: res.Dense(), entity: n.Entity}
	match, err := compilePredicate(v, n.Where)
	if err != nil {
		return nil, err
	}
	keys, err := compileOrders(v, n.OrderBy)
	if err != nil {
		return nil, err
	}
	pr, err := compileProjection(v, n.Select)
	if err != nil {
		return nil, err
	}
	keep := match
	if own != nil {
		keep = func(i int) bool {
			if !own(v.id(i)) {
				return false
			}
			return match == nil || match(i)
		}
	}
	N := v.count()
	k := n.Offset + n.Limit
	if k > N {
		k = N
	}
	less := func(a, b int) bool { return compareIdx(keys, a, b) < 0 }
	kept, total := selectTop(N, k, keep, less)
	slices.SortFunc(kept, func(a, b int) int { return compareIdx(keys, a, b) })
	rows := make([]ShardRow, 0, len(kept))
	primary := keys[0].get
	for _, i := range kept {
		kv := make([]float64, len(keys))
		for j := range keys {
			kv[j] = keys[j].get(i)
		}
		rows = append(rows, ShardRow{
			Row:  Row{ID: v.id(i), Score: primary(i), Fields: pr.fields(i)},
			Keys: kv,
		})
	}
	return &ShardResult{Entity: n.Entity, Rows: rows, Total: total, Plan: "scan/" + string(n.Entity)}, nil
}

// compareShardRows ranks two rows from (possibly different) shards under
// the normalized query's key order: key values with their desc flags,
// ties by ascending ID — the same total order compareIdx yields within one
// shard, because dense entity lists are ID-sorted.
func compareShardRows(a, b *ShardRow, desc []bool) int {
	for j, d := range desc {
		va, vb := a.Keys[j], b.Keys[j]
		if va == vb {
			continue
		}
		if (va > vb) == d {
			return -1
		}
		return 1
	}
	return strings.Compare(a.ID, b.ID)
}

// MergeShardRows k-way-merges per-shard ordered row lists into the global
// [Offset, Offset+Limit) window. Nil parts (shards that missed their
// deadline) are skipped — the merge degrades to the shards that answered.
// Totals sum across the answering shards.
func MergeShardRows(parts []*ShardResult, q *Query) (*Result, error) {
	n, err := q.Normalize()
	if err != nil {
		return nil, err
	}
	desc := make([]bool, len(n.OrderBy))
	for i, o := range n.OrderBy {
		desc[i] = o.Desc
	}
	live := parts[:0:0]
	total := 0
	plan := "scan/" + string(n.Entity)
	for _, p := range parts {
		if p == nil {
			continue
		}
		live = append(live, p)
		total += p.Total
		plan = p.Plan
	}
	cursors := make([]int, len(live))
	k := n.Offset + n.Limit
	merged := make([]Row, 0, min(k, total))
	for len(merged) < k {
		best := -1
		for s, p := range live {
			if cursors[s] >= len(p.Rows) {
				continue
			}
			if best < 0 || compareShardRows(&p.Rows[cursors[s]], &live[best].Rows[cursors[best]], desc) < 0 {
				best = s
			}
		}
		if best < 0 {
			break
		}
		merged = append(merged, live[best].Rows[cursors[best]].Row)
		cursors[best]++
	}
	merged = window(merged, n.Offset, n.Limit)
	return &Result{Entity: n.Entity, Rows: merged, Total: total, Plan: "scatter/" + plan}, nil
}

// ------------------------------------------------------ aggregate slabs

// AggSlab is one shard's per-domain partial aggregate: the shard's
// interned domain list with a raw (count, sum) pair per slot. Shards
// intern only the domains their own posts touch, so slabs from different
// shards carry different name lists; MergeAggSlabs unions them by name.
type AggSlab struct {
	Domains []string  `json:"domains"`
	Counts  []float64 `json:"counts"`
	Sums    []float64 `json:"sums"`
}

// ExecuteAggregateSlab runs the filter-and-accumulate half of an aggregate
// query on one shard, honoring the same ownership filter as ExecuteShard.
// The op (count/sum/mean) is NOT applied — the coordinator derives values
// from the merged counts and sums.
func ExecuteAggregateSlab(c *blog.Corpus, res *influence.Result, q *Query, own func(string) bool) (*AggSlab, error) {
	if c == nil || res == nil {
		return nil, fmt.Errorf("query: corpus and result required")
	}
	n, err := q.Normalize()
	if err != nil {
		return nil, err
	}
	if n.Aggregate == nil {
		return nil, fmt.Errorf("query: not an aggregate query")
	}
	v := &view{c: c, res: res, d: res.Dense(), entity: n.Entity}
	match, err := compilePredicate(v, n.Where)
	if err != nil {
		return nil, err
	}
	var fieldGet func(int) float64
	if n.Aggregate.Field != "" {
		if fieldGet, err = v.numGetter(Field{Name: n.Aggregate.Field}); err != nil {
			return nil, err
		}
	}
	d := v.d
	nd := len(d.Domains)
	slab := d.DomainScores
	if v.entity == EntityPosts {
		slab = d.PostDomains
	}
	counts := make([]float64, nd)
	sums := make([]float64, nd)
	N := v.count()
	for i := 0; i < N; i++ {
		if own != nil && !own(v.id(i)) {
			continue
		}
		if match != nil && !match(i) {
			continue
		}
		var fv float64
		if fieldGet != nil {
			fv = fieldGet(i)
		}
		row := slab[i*nd : (i+1)*nd]
		for di, w := range row {
			if w == 0 {
				continue
			}
			counts[di]++
			if fieldGet != nil {
				sums[di] += fv
			} else {
				sums[di] += w
			}
		}
	}
	return &AggSlab{Domains: slices.Clone(d.Domains), Counts: counts, Sums: sums}, nil
}

// ExecuteDomainsSlab computes one shard's per-domain (count, sum) partials
// for a domains-entity query: counts and sums of nonzero blogger domain
// scores, restricted to owned bloggers. Filtering, ordering and the mean
// derivation all happen after the merge (ExecuteDomainsMerged), because
// count/sum/mean predicates must see cluster-wide values.
func ExecuteDomainsSlab(c *blog.Corpus, res *influence.Result, q *Query, own func(string) bool) (*AggSlab, error) {
	if c == nil || res == nil {
		return nil, fmt.Errorf("query: corpus and result required")
	}
	n, err := q.Normalize()
	if err != nil {
		return nil, err
	}
	if n.Entity != EntityDomains {
		return nil, fmt.Errorf("query: entity %s is not domains", n.Entity)
	}
	d := res.Dense()
	nd := len(d.Domains)
	counts := make([]float64, nd)
	sums := make([]float64, nd)
	for bi := 0; bi < len(d.Bloggers); bi++ {
		if own != nil && !own(string(d.Bloggers[bi])) {
			continue
		}
		row := d.DomainScores[bi*nd : (bi+1)*nd]
		for di, s := range row {
			if s != 0 {
				counts[di]++
				sums[di] += s
			}
		}
	}
	return &AggSlab{Domains: slices.Clone(d.Domains), Counts: counts, Sums: sums}, nil
}

// MergeAggSlabs unions per-shard slabs by domain name (sorted) and sums
// their partials. Nil slabs (degraded shards) are skipped.
func MergeAggSlabs(slabs []*AggSlab) (names []string, counts, sums []float64) {
	idx := make(map[string]int)
	for _, s := range slabs {
		if s == nil {
			continue
		}
		for _, name := range s.Domains {
			if _, ok := idx[name]; !ok {
				idx[name] = len(names)
				names = append(names, name)
			}
		}
	}
	sort.Strings(names)
	for i, name := range names {
		idx[name] = i
	}
	counts = make([]float64, len(names))
	sums = make([]float64, len(names))
	for _, s := range slabs {
		if s == nil {
			continue
		}
		for di, name := range s.Domains {
			i := idx[name]
			counts[i] += s.Counts[di]
			sums[i] += s.Sums[di]
		}
	}
	return names, counts, sums
}

// ExecuteAggregateMerged finishes an aggregate query from merged partials:
// apply the op per domain, order values descending (name ascending on
// ties) and paginate — the same tail as the single-engine aggregate
// executor.
func ExecuteAggregateMerged(names []string, counts, sums []float64, q *Query) (*Result, error) {
	n, err := q.Normalize()
	if err != nil {
		return nil, err
	}
	if n.Aggregate == nil {
		return nil, fmt.Errorf("query: not an aggregate query")
	}
	values := make([]float64, len(names))
	for di := range values {
		switch n.Aggregate.Op {
		case AggCount:
			values[di] = counts[di]
		case AggSum:
			values[di] = sums[di]
		default: // mean
			if counts[di] > 0 {
				values[di] = sums[di] / counts[di]
			}
		}
	}
	rows := domainRows(names, values, n)
	return &Result{Entity: n.Entity, Rows: rows, Total: len(names), Plan: "scatter/aggregate"}, nil
}

// ExecuteDomainsMerged finishes a domains-entity query from merged
// partials via the shared single-engine tail (means, filter, sort,
// paginate).
func ExecuteDomainsMerged(names []string, counts, sums []float64, q *Query) (*Result, error) {
	n, err := q.Normalize()
	if err != nil {
		return nil, err
	}
	if n.Entity != EntityDomains {
		return nil, fmt.Errorf("query: entity %s is not domains", n.Entity)
	}
	r, err := domainsResult(names, counts, sums, n)
	if err != nil {
		return nil, err
	}
	r.Plan = "scatter/" + r.Plan
	return r, nil
}
