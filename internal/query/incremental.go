package query

import (
	"fmt"
	"slices"

	"mass/internal/blog"
	"mass/internal/influence"
)

// This file is the incremental-evaluation surface of the query engine:
// the primitives a standing-subscription maintainer (package subs) needs
// to keep a query's result window up to date by rescoring only the
// entities a flush actually changed, instead of re-executing the query
// from scratch.
//
// An Evaluator binds one normalized query to one analyzed generation and
// exposes the exact same compiled machinery Execute runs — the same
// predicate, the same sort keys, the same projection, the same plan
// selection and the same total order (keys, then ascending ID) — as
// per-entity primitives. Anything assembled from these primitives under
// that total order is therefore byte-identical to Execute's output for
// the same query and generation; the subs package's equivalence tests
// hold it to exactly that.

// DiffSafe reports whether q's result can be maintained by diffing
// against a publish delta. Entity scans over bloggers and posts qualify:
// their rows are per-entity, so rescoring the changed entities and
// re-merging is sound. Domain queries and aggregations do not — every
// row is a fold over the whole entity set, so any entity change can move
// any row and the subscription must fall back to full re-evaluation.
func DiffSafe(q *Query) (bool, error) {
	n, err := q.Normalize()
	if err != nil {
		return false, err
	}
	return n.Entity != EntityDomains && n.Aggregate == nil, nil
}

// EvalContext shares the per-generation resolved state — today the dense
// post-pointer table, one corpus-map pass — across every evaluator
// compiled against the same generation. A standing-subscription hub
// evaluating hundreds of queries per flush compiles one evaluator per
// query; without the shared context each of them would re-resolve the
// whole post table, turning an O(delta) maintenance pass into O(corpus)
// map lookups per query. Not safe for concurrent use while evaluators
// are being compiled (the resolution is lazy); the evaluators it
// produces are read-only and safe to share afterwards.
type EvalContext struct {
	c        *blog.Corpus
	res      *influence.Result
	postPtrs []*blog.Post
}

// NewEvalContext binds shared evaluator state to one generation.
func NewEvalContext(c *blog.Corpus, res *influence.Result) (*EvalContext, error) {
	if c == nil || res == nil {
		return nil, fmt.Errorf("query: corpus and result required")
	}
	return &EvalContext{c: c, res: res}, nil
}

func (ctx *EvalContext) posts() []*blog.Post {
	if ctx.postPtrs == nil {
		ctx.postPtrs = resolvePosts(ctx.c, ctx.res.Dense().Posts)
	}
	return ctx.postPtrs
}

// Warm forces the context's lazy resolutions eagerly. After Warm the
// context is read-only, so evaluators may be compiled against it from
// multiple goroutines — the precondition for a parallel fan-out sharing
// one context.
func (ctx *EvalContext) Warm() { ctx.posts() }

// Evaluator compiles q against the context's generation, sharing the
// context's resolved state. See NewEvaluator for the accepted queries.
func (ctx *EvalContext) Evaluator(q *Query) (*Evaluator, error) {
	return newEvaluator(ctx.c, ctx.res, q, ctx)
}

// Evaluator is a diff-safe query compiled against one generation's dense
// slabs. It is read-only and safe for concurrent use.
type Evaluator struct {
	v     *view
	n     *Query
	match func(int) bool // nil matches everything
	keys  []sortKey
	desc  []bool
	pr    *projection
	plan  string

	// Probe for single-numeric-comparison predicates (see PredProbe).
	// probe reads through the view, so Rebind re-targets it for free.
	probe    func(int) float64
	probeF   string
	probeOp  Op
	probeVal float64
}

// NewEvaluator compiles q against one analyzed generation. Only
// diff-safe queries (see DiffSafe) are accepted.
func NewEvaluator(c *blog.Corpus, res *influence.Result, q *Query) (*Evaluator, error) {
	return newEvaluator(c, res, q, nil)
}

func newEvaluator(c *blog.Corpus, res *influence.Result, q *Query, ctx *EvalContext) (*Evaluator, error) {
	if c == nil || res == nil {
		return nil, fmt.Errorf("query: corpus and result required")
	}
	n, err := q.Normalize()
	if err != nil {
		return nil, err
	}
	if ok, _ := DiffSafe(n); !ok {
		return nil, fmt.Errorf("query: %s/aggregate queries are not incrementally evaluable", n.Entity)
	}
	v := &view{c: c, res: res, d: res.Dense(), entity: n.Entity, ctx: ctx}
	match, err := compilePredicate(v, n.Where)
	if err != nil {
		return nil, err
	}
	keys, err := compileOrders(v, n.OrderBy)
	if err != nil {
		return nil, err
	}
	pr, err := compileProjection(v, n.Select)
	if err != nil {
		return nil, err
	}
	desc := make([]bool, len(keys))
	for i, k := range keys {
		desc[i] = k.desc
	}
	plan := rankedPlan(v, n)
	if plan == "" {
		// Constant strings, not concatenation: evaluators are compiled
		// per subscription per generation, so this runs hot.
		if n.Entity == EntityPosts {
			plan = "scan/posts"
		} else {
			plan = "scan/bloggers"
		}
	}
	e := &Evaluator{v: v, n: n, match: match, keys: keys, desc: desc, pr: pr, plan: plan}
	if c := singleNumCmp(n.Where); c != nil && len(c.Field.Weights) == 0 {
		if get, gerr := v.numGetter(c.Field); gerr == nil {
			want := c.Num
			if c.Kind == kindTime {
				want = timeKey(c.Time.Unix(), c.Time.Nanosecond())
			}
			e.probe, e.probeF, e.probeOp, e.probeVal = get, c.Field.Name, c.Op, want
		}
	}
	return e, nil
}

// singleNumCmp returns the predicate's sole comparison when the whole
// Where clause is one numeric (or time) comparison, nil otherwise.
func singleNumCmp(p *Predicate) *Comparison {
	if p == nil || p.Cmp == nil || p.Cmp.Kind == kindString {
		return nil
	}
	return p.Cmp
}

// Query returns the normalized query the evaluator was compiled from.
func (e *Evaluator) Query() *Query { return e.n }

// Rebind re-targets the compiled evaluator at a new generation without
// recompiling: every compiled accessor reads the generation through the
// evaluator's view (see view.numGetter), so swapping the view's
// bindings re-points the predicate, sort keys and projection at once.
// The one thing baked in at compile time is the interned domain-slot
// layout, so Rebind reports false — leaving the evaluator untouched —
// when the new generation's domain list differs.
//
// A standing-subscription maintainer alternates two compiled evaluators
// per query, rebinding the spare at each flush: the per-generation cost
// drops from a full compile to a few pointer swaps. Rebind must not be
// called concurrently with any use of the evaluator; after it returns
// true the evaluator is again safe for concurrent reads.
func (e *Evaluator) Rebind(ctx *EvalContext) bool {
	if ctx == nil {
		return false
	}
	d := ctx.res.Dense()
	if !slices.Equal(e.v.d.Domains, d.Domains) {
		return false
	}
	e.v.c, e.v.res, e.v.d, e.v.ctx, e.v.postPtrs = ctx.c, ctx.res, d, ctx, nil
	e.plan = rankedPlan(e.v, e.n)
	if e.plan == "" {
		if e.n.Entity == EntityPosts {
			e.plan = "scan/posts"
		} else {
			e.plan = "scan/bloggers"
		}
	}
	return true
}

// Unfiltered reports whether the query has no predicate — every entity
// matches, so a maintainer can count matches without calling Match.
func (e *Evaluator) Unfiltered() bool { return e.match == nil }

// PredProbe exposes the query's predicate when it is a single
// shareable numeric comparison: "<field> <op> <threshold>" with no
// per-query weight vector. Subscriptions with the same field (but any
// op and threshold) can then share one sorted value index over a
// delta's changed set and answer "how many match" with a binary search
// instead of a per-entity Match sweep. ok is false for compound,
// string, weighted or absent predicates.
func (e *Evaluator) PredProbe() (field string, op Op, threshold float64, ok bool) {
	if e.probe == nil {
		return "", "", 0, false
	}
	return e.probeF, e.probeOp, e.probeVal, true
}

// PredValue reads the probe field's value at dense index i — the
// primitive shared predicate indexes are built from. Only valid when
// PredProbe reports ok.
func (e *Evaluator) PredValue(i int) float64 { return e.probe(i) }

// Plan names the executor Execute would have chosen for this query
// against this generation ("ranked/general", "ranked/domain" or
// "scan/<entity>"). The ranked fast paths serve the identical total
// order the scan comparator produces (descending score, ascending ID on
// ties), so the incremental maintainer uses one code path and reports
// the plan Execute would.
func (e *Evaluator) Plan() string { return e.plan }

// Count is the number of entities in the generation's dense list.
func (e *Evaluator) Count() int { return e.v.count() }

// ID returns the entity ID at dense index i.
func (e *Evaluator) ID(i int) string { return e.v.id(i) }

// Index resolves an entity ID to its dense index in this generation.
func (e *Evaluator) Index(id string) (int, bool) {
	if e.v.entity == EntityPosts {
		return e.v.res.PostIndex(blog.PostID(id))
	}
	return e.v.res.BloggerIndex(blog.BloggerID(id))
}

// Match reports whether the entity at dense index i passes the query's
// predicate.
func (e *Evaluator) Match(i int) bool { return e.match == nil || e.match(i) }

// SortKeyValue reads the entity's ki-th sort-key value alone — the
// primitive shared per-delta key indexes are built from.
func (e *Evaluator) SortKeyValue(ki, i int) float64 { return e.keys[ki].get(i) }

// Keys appends the entity's sort-key values to dst and returns it — the
// comparable fingerprint CompareVals ranks. For an unchanged entity the
// values are bit-identical across generations, which is what makes
// cached key vectors comparable against freshly computed ones.
func (e *Evaluator) Keys(i int, dst []float64) []float64 {
	for _, k := range e.keys {
		dst = append(dst, k.get(i))
	}
	return dst
}

// Row materializes the result row for the entity at dense index i,
// exactly as Execute would: Score is the primary sort key, Fields the
// compiled projection (nil when the query selects nothing).
func (e *Evaluator) Row(i int) Row {
	return Row{ID: e.v.id(i), Score: e.keys[0].get(i), Fields: e.pr.fields(i)}
}

// CompareIdxVals ranks the entity at dense index i against a stored key
// vector under the query's total order (CompareVals semantics), reading
// i's key values lazily — the first key usually decides, so a horizon
// filter over many entities costs one slab read each instead of a
// materialized key vector.
func (e *Evaluator) CompareIdxVals(i int, bKeys []float64, bID string) int {
	for ki, k := range e.keys {
		va, vb := k.get(i), bKeys[ki]
		if va == vb {
			continue
		}
		if (va > vb) == k.desc {
			return -1
		}
		return 1
	}
	aID := e.v.id(i)
	switch {
	case aID < bID:
		return -1
	case aID > bID:
		return 1
	}
	return 0
}

// CompareVals ranks two entities by their stored key vectors under the
// query's sort directions, ties broken by ascending ID — the same total
// order compareIdx imposes (the dense entity lists are ID-sorted, so
// ascending index is ascending ID). It lets a maintainer order entries
// cached from an older generation against freshly scored ones without
// resolving dense indices.
func (e *Evaluator) CompareVals(aKeys []float64, aID string, bKeys []float64, bID string) int {
	for ki, d := range e.desc {
		va, vb := aKeys[ki], bKeys[ki]
		if va == vb {
			continue
		}
		if (va > vb) == d {
			return -1
		}
		return 1
	}
	switch {
	case aID < bID:
		return -1
	case aID > bID:
		return 1
	}
	return 0
}
