package query

import (
	"fmt"
	"slices"
	"strings"

	"mass/internal/blog"
	"mass/internal/influence"
	"mass/internal/rank"
)

// Row is one result row: the entity ID, the value of the primary sort key
// (the aggregate value for aggregated queries), and any projected fields.
type Row struct {
	ID     string             `json:"id"`
	Score  float64            `json:"score"`
	Fields map[string]float64 `json:"fields,omitempty"`
}

// Result is an executed query.
type Result struct {
	Entity Entity `json:"entity"`
	Rows   []Row  `json:"rows"`
	// Total is the number of entities matching the filter (the number of
	// domain rows for aggregated queries), before pagination.
	Total int `json:"total"`
	// Plan names the executor that answered the query:
	// "ranked/general" and "ranked/domain" serve from the snapshot's
	// precomputed rankings; "scan/*" is the dense filtered top-k scan;
	// "aggregate" and "domains" are the per-domain aggregators.
	Plan string `json:"plan"`
}

// Execute plans and runs q against one analyzed generation. It validates
// and normalizes q first, so any *Query — hand-built, builder-built or
// decoded — is accepted. The corpus and result must belong to the same
// snapshot.
func Execute(c *blog.Corpus, res *influence.Result, q *Query) (*Result, error) {
	if c == nil || res == nil {
		return nil, fmt.Errorf("query: corpus and result required")
	}
	n, err := q.Normalize()
	if err != nil {
		return nil, err
	}
	v := &view{c: c, res: res, d: res.Dense(), entity: n.Entity}
	switch {
	case n.Entity == EntityDomains:
		return execDomains(v, n)
	case n.Aggregate != nil:
		return execAggregate(v, n)
	}
	if plan := rankedPlan(v, n); plan != "" {
		return execRanked(v, n, plan)
	}
	return execScan(v, n)
}

// ------------------------------------------------------------------ view

// view binds one snapshot's dense slabs plus the corpus-side facets the
// slabs do not carry (post structs, per-author post counts).
type view struct {
	c      *blog.Corpus
	res    *influence.Result
	d      influence.DenseView
	entity Entity

	ctx      *EvalContext // shared per-generation state, may be nil
	postPtrs []*blog.Post // lazily resolved, aligned with d.Posts
}

// posts resolves the post structs once; costs one slice, never a map.
// Views sharing an EvalContext share the resolution.
func (v *view) posts() []*blog.Post {
	if v.ctx != nil {
		return v.ctx.posts()
	}
	if v.postPtrs == nil {
		v.postPtrs = resolvePosts(v.c, v.d.Posts)
	}
	return v.postPtrs
}

func resolvePosts(c *blog.Corpus, ids []blog.PostID) []*blog.Post {
	ptrs := make([]*blog.Post, len(ids))
	for i, pid := range ids {
		ptrs[i] = c.Posts[pid]
	}
	return ptrs
}

func (v *view) count() int {
	if v.entity == EntityPosts {
		return len(v.d.Posts)
	}
	return len(v.d.Bloggers)
}

func (v *view) id(i int) string {
	if v.entity == EntityPosts {
		return string(v.d.Posts[i])
	}
	return string(v.d.Bloggers[i])
}

// timeKey projects a time onto the comparable float axis used for posted
// predicates and ordering (seconds, with sub-second fraction).
func timeKey(sec int64, nsec int) float64 {
	return float64(sec) + float64(nsec)*1e-9
}

func zeroGetter(int) float64 { return 0 }

// window applies the query's offset/limit to an ordered slice — the one
// pagination implementation every executor shares.
func window[T any](s []T, offset, limit int) []T {
	if offset >= len(s) {
		return nil
	}
	s = s[offset:]
	if len(s) > limit {
		s = s[:limit]
	}
	return s
}

// numGetter compiles a numeric facet accessor for the view's entity.
// Accessors read the generation through v on every call — never through
// a captured slab — so Evaluator.Rebind can re-target every compiled
// accessor at a new generation by swapping the view's bindings, without
// recompiling. Domain-slot layout (slot indices, interest weight
// vectors) is the one thing baked in at compile time; Rebind therefore
// refuses generations whose interned domain list changed.
func (v *view) numGetter(f Field) (func(int) float64, error) {
	nd := len(v.d.Domains)
	if f.Name == FieldInterest {
		w := make([]float64, nd)
		for di, name := range v.d.Domains {
			w[di] = f.Weights[name]
		}
		if v.entity == EntityPosts {
			return func(i int) float64 { return dotRow(v.d.PostDomains, w, i) }, nil
		}
		return func(i int) float64 { return dotRow(v.d.DomainScores, w, i) }, nil
	}
	if name, ok := strings.CutPrefix(f.Name, "domain:"); ok {
		slot, known := v.res.DomainSlot(name)
		if !known {
			return zeroGetter, nil
		}
		if v.entity == EntityPosts {
			return func(i int) float64 { return slotRow(v.d.PostDomains, nd, slot, i) }, nil
		}
		return func(i int) float64 { return slotRow(v.d.DomainScores, nd, slot, i) }, nil
	}
	if v.entity == EntityBloggers {
		switch f.Name {
		case FieldInfluence:
			return func(i int) float64 { return v.d.Influence[i] }, nil
		case FieldAP:
			return func(i int) float64 { return v.d.AP[i] }, nil
		case FieldGL:
			return func(i int) float64 { return v.d.GL[i] }, nil
		case FieldPosts:
			return func(i int) float64 { return float64(len(v.c.PostsBy(v.d.Bloggers[i]))) }, nil
		}
	} else {
		switch f.Name {
		case FieldInfluence:
			return func(i int) float64 { return v.d.PostScore[i] }, nil
		case FieldQuality:
			return func(i int) float64 { return v.d.Quality[i] }, nil
		case FieldNovelty:
			return func(i int) float64 { return v.d.Novelty[i] }, nil
		case FieldSentiment:
			return func(i int) float64 { return v.d.Sentiment[i] }, nil
		case FieldComments:
			return func(i int) float64 { return float64(len(v.posts()[i].Comments)) }, nil
		case FieldPosted:
			return func(i int) float64 {
				t := v.posts()[i].Posted
				return timeKey(t.Unix(), t.Nanosecond())
			}, nil
		}
	}
	return nil, fmt.Errorf("query: field %q has no %s accessor", f.Name, v.entity)
}

// dotRow is the weighted dot product of one dense domain row — the
// FieldInterest accessor body, mirroring influence.Result.InterestScores
// term order exactly.
func dotRow(slab, w []float64, i int) float64 {
	nd := len(w)
	if nd == 0 || len(slab) == 0 {
		return 0
	}
	row := slab[i*nd : (i+1)*nd]
	var dot float64
	for di, s := range row {
		dot += s * w[di]
	}
	return dot
}

func slotRow(slab []float64, nd, slot, i int) float64 {
	if nd == 0 || len(slab) == 0 {
		return 0
	}
	return slab[i*nd+slot]
}

func (v *view) strGetter(f Field) (func(int) string, error) {
	if v.entity == EntityPosts && f.Name == FieldAuthor {
		return func(i int) string { return string(v.posts()[i].Author) }, nil
	}
	return nil, fmt.Errorf("query: field %q has no string accessor", f.Name)
}

// ------------------------------------------------------------ predicates

// getters abstracts facet resolution so the same predicate compiler
// serves entity scans and domain-row filtering.
type getters interface {
	numGetter(f Field) (func(int) float64, error)
	strGetter(f Field) (func(int) string, error)
}

func compilePredicate(g getters, p *Predicate) (func(int) bool, error) {
	if p == nil {
		return nil, nil
	}
	switch {
	case len(p.And) > 0:
		kids, err := compileAll(g, p.And)
		if err != nil {
			return nil, err
		}
		return func(i int) bool {
			for _, k := range kids {
				if !k(i) {
					return false
				}
			}
			return true
		}, nil
	case len(p.Or) > 0:
		kids, err := compileAll(g, p.Or)
		if err != nil {
			return nil, err
		}
		return func(i int) bool {
			for _, k := range kids {
				if k(i) {
					return true
				}
			}
			return false
		}, nil
	case p.Not != nil:
		kid, err := compilePredicate(g, p.Not)
		if err != nil {
			return nil, err
		}
		return func(i int) bool { return !kid(i) }, nil
	case p.Cmp != nil:
		return compileComparison(g, p.Cmp)
	}
	return nil, fmt.Errorf("query: empty predicate node")
}

func compileAll(g getters, ps []*Predicate) ([]func(int) bool, error) {
	out := make([]func(int) bool, len(ps))
	for i, p := range ps {
		k, err := compilePredicate(g, p)
		if err != nil {
			return nil, err
		}
		out[i] = k
	}
	return out, nil
}

func compileComparison(g getters, c *Comparison) (func(int) bool, error) {
	if c.Kind == kindString {
		get, err := g.strGetter(c.Field)
		if err != nil {
			return nil, err
		}
		want := c.Str
		if c.Op == OpEq {
			return func(i int) bool { return get(i) == want }, nil
		}
		return func(i int) bool { return get(i) != want }, nil
	}
	get, err := g.numGetter(c.Field)
	if err != nil {
		return nil, err
	}
	want := c.Num
	if c.Kind == kindTime {
		want = timeKey(c.Time.Unix(), c.Time.Nanosecond())
	}
	switch c.Op {
	case OpEq:
		return func(i int) bool { return get(i) == want }, nil
	case OpNe:
		return func(i int) bool { return get(i) != want }, nil
	case OpLt:
		return func(i int) bool { return get(i) < want }, nil
	case OpLe:
		return func(i int) bool { return get(i) <= want }, nil
	case OpGt:
		return func(i int) bool { return get(i) > want }, nil
	default:
		return func(i int) bool { return get(i) >= want }, nil
	}
}

// -------------------------------------------------------------- ordering

type sortKey struct {
	get  func(int) float64
	desc bool
}

func compileOrders(g getters, orders []Order) ([]sortKey, error) {
	keys := make([]sortKey, len(orders))
	for i, o := range orders {
		get, err := g.numGetter(o.Field)
		if err != nil {
			return nil, err
		}
		keys[i] = sortKey{get: get, desc: o.Desc}
	}
	return keys, nil
}

// compareKeys ranks two entity indices under the sort keys alone; 0 on a
// full tie.
func compareKeys(keys []sortKey, a, b int) int {
	for _, k := range keys {
		va, vb := k.get(a), k.get(b)
		if va == vb {
			continue
		}
		if (va > vb) == k.desc {
			return -1
		}
		return 1
	}
	return 0
}

// compareIdx is compareKeys with ties broken by ascending index, which is
// ascending ID for the sorted dense entity lists — the same total order
// rank.TopK uses.
func compareIdx(keys []sortKey, a, b int) int {
	if c := compareKeys(keys, a, b); c != 0 {
		return c
	}
	return a - b
}

// selectTop streams indices [0, n) through the filter and keeps the k
// best under less in a bounded binary heap (worst kept at the root). It
// reports the kept indices (unsorted) and the total match count. No maps,
// no per-entity allocation.
func selectTop(n, k int, match func(int) bool, less func(a, b int) bool) (kept []int, total int) {
	worse := func(a, b int) bool { return less(b, a) }
	h := make([]int, 0, max(k, 0))
	for i := 0; i < n; i++ {
		if match != nil && !match(i) {
			continue
		}
		total++
		if len(h) < k {
			h = append(h, i)
			// Sift up: keep the worst at the root.
			c := len(h) - 1
			for c > 0 {
				p := (c - 1) / 2
				if !worse(h[c], h[p]) {
					break
				}
				h[p], h[c] = h[c], h[p]
				c = p
			}
			continue
		}
		if k == 0 || !less(i, h[0]) {
			continue
		}
		h[0] = i
		// Sift down.
		p := 0
		for {
			c := 2*p + 1
			if c >= len(h) {
				break
			}
			if c+1 < len(h) && worse(h[c+1], h[c]) {
				c++
			}
			if !worse(h[c], h[p]) {
				break
			}
			h[p], h[c] = h[c], h[p]
			p = c
		}
	}
	return h, total
}

// ------------------------------------------------------------- executors

// projection is the compiled select list.
type projection struct {
	names []string
	gets  []func(int) float64
}

func compileProjection(g getters, sel []string) (*projection, error) {
	if len(sel) == 0 {
		return nil, nil
	}
	pr := &projection{names: sel, gets: make([]func(int) float64, len(sel))}
	for i, name := range sel {
		get, err := g.numGetter(Field{Name: name})
		if err != nil {
			return nil, err
		}
		pr.gets[i] = get
	}
	return pr, nil
}

func (pr *projection) fields(i int) map[string]float64 {
	if pr == nil {
		return nil
	}
	out := make(map[string]float64, len(pr.names))
	for j, name := range pr.names {
		out[name] = pr.gets[j](i)
	}
	return out
}

// rankedPlan reports the precomputed-ranking fast path serving q, or ""
// when a scan is needed: an unfiltered blogger query ordered by a single
// descending influence or domain-score key.
func rankedPlan(v *view, n *Query) string {
	if v.entity != EntityBloggers || n.Where != nil || len(n.OrderBy) != 1 {
		return ""
	}
	o := n.OrderBy[0]
	if !o.Desc || len(o.Field.Weights) > 0 {
		return ""
	}
	if o.Field.Name == FieldInfluence {
		return "ranked/general"
	}
	if strings.HasPrefix(o.Field.Name, "domain:") && len(v.d.Domains) > 0 {
		return "ranked/domain"
	}
	return ""
}

func execRanked(v *view, n *Query, plan string) (*Result, error) {
	pr, err := compileProjection(v, n.Select)
	if err != nil {
		return nil, err
	}
	k := n.Offset + n.Limit
	var entries []rank.Entry
	if plan == "ranked/general" {
		entries = v.res.TopGeneral(k)
	} else {
		name := strings.TrimPrefix(n.OrderBy[0].Field.Name, "domain:")
		entries = v.res.TopDomain(name, k)
	}
	entries = window(entries, n.Offset, n.Limit)
	rows := make([]Row, 0, len(entries))
	for _, e := range entries {
		row := Row{ID: e.ID, Score: e.Score}
		if pr != nil {
			if bi, ok := v.res.BloggerIndex(blog.BloggerID(e.ID)); ok {
				row.Fields = pr.fields(bi)
			}
		}
		rows = append(rows, row)
	}
	return &Result{Entity: n.Entity, Rows: rows, Total: len(v.d.Bloggers), Plan: plan}, nil
}

func execScan(v *view, n *Query) (*Result, error) {
	match, err := compilePredicate(v, n.Where)
	if err != nil {
		return nil, err
	}
	keys, err := compileOrders(v, n.OrderBy)
	if err != nil {
		return nil, err
	}
	pr, err := compileProjection(v, n.Select)
	if err != nil {
		return nil, err
	}
	N := v.count()
	k := n.Offset + n.Limit
	if k > N {
		k = N
	}
	less := func(a, b int) bool { return compareIdx(keys, a, b) < 0 }
	kept, total := selectTop(N, k, match, less)
	slices.SortFunc(kept, func(a, b int) int { return compareIdx(keys, a, b) })
	kept = window(kept, n.Offset, n.Limit)
	rows := make([]Row, 0, len(kept))
	primary := keys[0].get
	for _, i := range kept {
		rows = append(rows, Row{ID: v.id(i), Score: primary(i), Fields: pr.fields(i)})
	}
	return &Result{Entity: n.Entity, Rows: rows, Total: total, Plan: "scan/" + string(n.Entity)}, nil
}

func execAggregate(v *view, n *Query) (*Result, error) {
	match, err := compilePredicate(v, n.Where)
	if err != nil {
		return nil, err
	}
	var fieldGet func(int) float64
	if n.Aggregate.Field != "" {
		if fieldGet, err = v.numGetter(Field{Name: n.Aggregate.Field}); err != nil {
			return nil, err
		}
	}
	d := v.d
	nd := len(d.Domains)
	slab := d.DomainScores
	if v.entity == EntityPosts {
		slab = d.PostDomains
	}
	counts := make([]float64, nd)
	sums := make([]float64, nd)
	N := v.count()
	for i := 0; i < N; i++ {
		if match != nil && !match(i) {
			continue
		}
		var fv float64
		if fieldGet != nil {
			fv = fieldGet(i)
		}
		row := slab[i*nd : (i+1)*nd]
		for di, w := range row {
			if w == 0 {
				continue
			}
			counts[di]++
			if fieldGet != nil {
				sums[di] += fv
			} else {
				sums[di] += w
			}
		}
	}
	values := make([]float64, nd)
	for di := range values {
		switch n.Aggregate.Op {
		case AggCount:
			values[di] = counts[di]
		case AggSum:
			values[di] = sums[di]
		default: // mean
			if counts[di] > 0 {
				values[di] = sums[di] / counts[di]
			}
		}
	}
	rows := domainRows(d.Domains, values, n)
	return &Result{Entity: n.Entity, Rows: rows, Total: nd, Plan: "aggregate"}, nil
}

// domainView adapts per-domain value arrays to the predicate compiler.
type domainView struct {
	fields map[string][]float64
}

func (v *domainView) numGetter(f Field) (func(int) float64, error) {
	vals, ok := v.fields[f.Name]
	if !ok {
		return nil, fmt.Errorf("query: field %q has no domain accessor", f.Name)
	}
	return func(i int) float64 { return vals[i] }, nil
}

func (v *domainView) strGetter(f Field) (func(int) string, error) {
	return nil, fmt.Errorf("query: field %q has no string accessor", f.Name)
}

func execDomains(v *view, n *Query) (*Result, error) {
	d := v.d
	nd := len(d.Domains)
	counts := make([]float64, nd)
	sums := make([]float64, nd)
	for bi := 0; bi < len(d.Bloggers); bi++ {
		row := d.DomainScores[bi*nd : (bi+1)*nd]
		for di, s := range row {
			if s != 0 {
				counts[di]++
				sums[di] += s
			}
		}
	}
	return domainsResult(d.Domains, counts, sums, n)
}

// domainsResult is the tail of the domains executor — means from
// counts/sums, predicate/order/select compiled against the per-domain
// arrays, filter, sort, paginate. It is shared with the cluster
// coordinator, which feeds it counts/sums merged across shards (count and
// sum are associative; mean never is, so it is always derived here, after
// the merge).
func domainsResult(names []string, counts, sums []float64, n *Query) (*Result, error) {
	nd := len(names)
	means := make([]float64, nd)
	for di := range means {
		if counts[di] > 0 {
			means[di] = sums[di] / counts[di]
		}
	}
	dv := &domainView{fields: map[string][]float64{
		FieldCount: counts,
		FieldSum:   sums,
		FieldMean:  means,
	}}
	match, err := compilePredicate(dv, n.Where)
	if err != nil {
		return nil, err
	}
	keys, err := compileOrders(dv, n.OrderBy)
	if err != nil {
		return nil, err
	}
	pr, err := compileProjection(dv, n.Select)
	if err != nil {
		return nil, err
	}
	idx := make([]int, 0, nd)
	for di := 0; di < nd; di++ {
		if match == nil || match(di) {
			idx = append(idx, di)
		}
	}
	total := len(idx)
	// Domain slots are interning order, not name order, so ties break by
	// name, not index.
	slices.SortFunc(idx, func(a, b int) int {
		if c := compareKeys(keys, a, b); c != 0 {
			return c
		}
		return strings.Compare(names[a], names[b])
	})
	idx = window(idx, n.Offset, n.Limit)
	rows := make([]Row, 0, len(idx))
	primary := keys[0].get
	for _, di := range idx {
		rows = append(rows, Row{ID: names[di], Score: primary(di), Fields: pr.fields(di)})
	}
	return &Result{Entity: EntityDomains, Rows: rows, Total: total, Plan: "domains"}, nil
}

// domainRows orders per-domain values descending (name ascending on
// ties) and paginates — the tail of the aggregate executor.
func domainRows(names []string, values []float64, n *Query) []Row {
	idx := make([]int, len(names))
	for i := range idx {
		idx[i] = i
	}
	slices.SortFunc(idx, func(a, b int) int {
		if values[a] != values[b] {
			if values[a] > values[b] {
				return -1
			}
			return 1
		}
		return strings.Compare(names[a], names[b])
	})
	idx = window(idx, n.Offset, n.Limit)
	rows := make([]Row, 0, len(idx))
	for _, i := range idx {
		rows = append(rows, Row{ID: names[i], Score: values[i]})
	}
	return rows
}
