// Package query is the composable read surface of MASS: one typed query
// contract over the three analyzed entity kinds (bloggers, posts,
// domains), replacing the zoo of one-off accessors and endpoints the demo
// scenarios used to require.
//
// A Query selects an entity set, filters it with a boolean predicate tree
// over the scored facets of the influence model (influence, per-domain
// score, quality, novelty, sentiment, post/comment counts, time range,
// weighted interest vectors), orders it by any scored facet, projects
// selected fields, paginates, and optionally aggregates per domain
// (count/sum/mean).
//
// Queries arrive two ways — the fluent Go builder (Bloggers().Where(...)
// .OrderBy(...).Limit(...)) and a strict JSON decoder (Decode) used by
// POST /api/v1/query — and compile down to the same planner: Execute
// inspects the query and either serves it from the influence.Result's
// precomputed rankings (unfiltered top-k over influence or one domain) or
// runs an index-aware scan over the result's dense []float64 slabs with a
// bounded top-k heap. The executors never materialize per-blogger or
// per-post maps; allocation on the filtered top-k path is O(plan + k),
// independent of corpus size.
//
// Results are memoized per analysis generation by Cache, keyed by
// (snapshot seq, normalized query), so repeated dashboard queries cost a
// map lookup until the engine publishes a new generation.
package query

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Entity selects what a query ranges over.
type Entity string

const (
	// Bloggers queries the per-blogger influence facets.
	EntityBloggers Entity = "bloggers"
	// Posts queries the per-post facets.
	EntityPosts Entity = "posts"
	// Domains queries per-domain aggregates of blogger influence mass.
	EntityDomains Entity = "domains"
)

// Op is a comparison operator in a leaf predicate.
type Op string

const (
	OpEq Op = "eq"
	OpNe Op = "ne"
	OpLt Op = "lt"
	OpLe Op = "le"
	OpGt Op = "gt"
	OpGe Op = "ge"
)

// AggOp is a per-domain aggregation operator.
type AggOp string

const (
	AggCount AggOp = "count"
	AggSum   AggOp = "sum"
	AggMean  AggOp = "mean"
)

// Field names. Domain-score fields use the "domain:<name>" form (see
// DomainKey); FieldInterest carries a weight vector and is only valid
// with Weights set.
const (
	FieldInfluence = "influence" // bloggers: Inf(b); posts: Inf(b, d_k)
	FieldAP        = "ap"        // bloggers
	FieldGL        = "gl"        // bloggers
	FieldPosts     = "posts"     // bloggers: authored post count
	FieldQuality   = "quality"   // posts
	FieldNovelty   = "novelty"   // posts
	FieldSentiment = "sentiment" // posts: mean comment sentiment factor
	FieldComments  = "comments"  // posts: comment count
	FieldPosted    = "posted"    // posts: publication time (RFC3339 in JSON)
	FieldAuthor    = "author"    // posts: author ID (eq/ne only)
	FieldInterest  = "interest"  // bloggers/posts: dot product with Weights
	FieldCount     = "count"     // domains: bloggers with nonzero score
	FieldSum       = "sum"       // domains: Σ blogger domain score
	FieldMean      = "mean"      // domains: sum / count
)

// DomainKey returns the field name addressing one domain's score column
// ("domain:<name>"): Inf(b, C_t) for bloggers, the classifier posterior
// weight for posts.
func DomainKey(name string) string { return "domain:" + name }

// Field identifies a scored facet. Weights is set only for
// FieldInterest, where the facet value is the dot product of the
// entity's domain vector with the weights.
type Field struct {
	Name    string
	Weights map[string]float64
}

// valueKind classifies what a field's values are compared as.
type valueKind int

const (
	kindNumber valueKind = iota
	kindTime
	kindString
)

// Comparison is a leaf predicate: Field Op value. Exactly one of Num,
// Time, Str is meaningful, according to Kind.
type Comparison struct {
	Field Field
	Op    Op
	Kind  valueKind

	Num  float64
	Time time.Time
	Str  string
}

// Predicate is a boolean combination of comparisons. Exactly one of And,
// Or, Not, Cmp is set.
type Predicate struct {
	And []*Predicate
	Or  []*Predicate
	Not *Predicate
	Cmp *Comparison
}

// Order is one sort key.
type Order struct {
	Field Field
	Desc  bool
}

// Aggregate groups the filtered entity set per domain. For each domain,
// an entity is a member when its weight in that domain is nonzero;
// AggCount counts members, AggSum sums Field over members (defaulting to
// the domain weight itself when Field is empty), AggMean divides the two.
type Aggregate struct {
	Op AggOp
	// Field names the aggregated facet; empty means the per-domain weight
	// (blogger domain score / post posterior weight).
	Field string
}

// Query limits. DefaultLimit applies when Limit is unset; the API layer
// further clamps to its own documented page bounds.
const (
	DefaultLimit = 10
	MaxLimit     = 100000
	MaxOffset    = 1 << 20
	// maxDepth bounds predicate nesting so hostile JSON cannot build
	// pathological trees.
	maxDepth = 64
)

// Query is the typed AST. Build one with the fluent builder (Bloggers,
// Posts, Domains) or decode one from JSON (Decode).
type Query struct {
	Entity    Entity
	Where     *Predicate
	OrderBy   []Order
	Select    []string
	Limit     int // 0 means DefaultLimit; negative is invalid
	Offset    int
	Aggregate *Aggregate

	// normalized marks a query returned by Normalize, so the pipeline
	// (Decode → cache key → Execute) validates the tree exactly once.
	normalized bool
}

// ---------------------------------------------------------------- fields

// fieldSpec describes one queryable facet of an entity.
type fieldSpec struct {
	kind       valueKind
	selectable bool
	orderable  bool
}

var bloggerFields = map[string]fieldSpec{
	FieldInfluence: {kindNumber, true, true},
	FieldAP:        {kindNumber, true, true},
	FieldGL:        {kindNumber, true, true},
	FieldPosts:     {kindNumber, true, true},
}

var postFields = map[string]fieldSpec{
	FieldInfluence: {kindNumber, true, true},
	FieldQuality:   {kindNumber, true, true},
	FieldNovelty:   {kindNumber, true, true},
	FieldSentiment: {kindNumber, true, true},
	FieldComments:  {kindNumber, true, true},
	FieldPosted:    {kindTime, true, true},
	FieldAuthor:    {kindString, false, false},
}

var domainFields = map[string]fieldSpec{
	FieldCount: {kindNumber, true, true},
	FieldSum:   {kindNumber, true, true},
	FieldMean:  {kindNumber, true, true},
}

// resolveField validates a field reference against an entity and reports
// its spec.
func resolveField(entity Entity, f Field) (fieldSpec, error) {
	if f.Name == FieldInterest {
		if entity == EntityDomains {
			return fieldSpec{}, fmt.Errorf("field %q is not valid for entity %q", f.Name, entity)
		}
		if len(f.Weights) == 0 {
			return fieldSpec{}, fmt.Errorf("field %q requires a non-empty weights object", FieldInterest)
		}
		// Domain names are not validated against the analysis: an unknown
		// (or empty) name simply contributes zero to every dot product,
		// matching DomainScore's unknown-domain semantics.
		for d, w := range f.Weights {
			if math.IsNaN(w) || math.IsInf(w, 0) {
				return fieldSpec{}, fmt.Errorf("interest weight for %q is not finite", d)
			}
		}
		return fieldSpec{kind: kindNumber, selectable: false, orderable: true}, nil
	}
	if len(f.Weights) > 0 {
		return fieldSpec{}, fmt.Errorf("field %q does not take weights", f.Name)
	}
	if name, ok := strings.CutPrefix(f.Name, "domain:"); ok {
		if entity == EntityDomains {
			return fieldSpec{}, fmt.Errorf("field %q is not valid for entity %q", f.Name, entity)
		}
		if name == "" {
			return fieldSpec{}, fmt.Errorf("domain field needs a name: %q", f.Name)
		}
		return fieldSpec{kind: kindNumber, selectable: true, orderable: true}, nil
	}
	var catalog map[string]fieldSpec
	switch entity {
	case EntityBloggers:
		catalog = bloggerFields
	case EntityPosts:
		catalog = postFields
	case EntityDomains:
		catalog = domainFields
	default:
		return fieldSpec{}, fmt.Errorf("unknown entity %q", entity)
	}
	spec, ok := catalog[f.Name]
	if !ok {
		return fieldSpec{}, fmt.Errorf("unknown field %q for entity %q", f.Name, entity)
	}
	return spec, nil
}

// ------------------------------------------------------------- normalize

// Normalize validates q and returns a copy with defaults applied (entity
// default ordering, DefaultLimit) — the canonical form the planner
// executes and the cache keys on. q itself is not modified.
func (q *Query) Normalize() (*Query, error) {
	if q == nil {
		return nil, fmt.Errorf("query: nil query")
	}
	if q.normalized {
		return q, nil
	}
	n := *q
	switch n.Entity {
	case EntityBloggers, EntityPosts, EntityDomains:
	default:
		return nil, fmt.Errorf("query: unknown entity %q (want bloggers, posts or domains)", n.Entity)
	}
	// Zero (unset) defaults; an explicitly negative limit is rejected
	// like every other negative v1 parameter, not silently coerced.
	if n.Limit < 0 {
		return nil, fmt.Errorf("query: negative limit")
	}
	if n.Limit == 0 {
		n.Limit = DefaultLimit
	}
	if n.Limit > MaxLimit {
		n.Limit = MaxLimit
	}
	if n.Offset < 0 {
		return nil, fmt.Errorf("query: negative offset")
	}
	if n.Offset > MaxOffset {
		return nil, fmt.Errorf("query: offset above %d", MaxOffset)
	}
	if err := validatePredicate(n.Entity, n.Where, 0); err != nil {
		return nil, fmt.Errorf("query: %w", err)
	}
	if n.Aggregate != nil {
		if n.Entity == EntityDomains {
			return nil, fmt.Errorf("query: aggregate is implicit for entity %q", EntityDomains)
		}
		switch n.Aggregate.Op {
		case AggCount, AggSum, AggMean:
		default:
			return nil, fmt.Errorf("query: unknown aggregate op %q", n.Aggregate.Op)
		}
		if n.Aggregate.Field != "" {
			spec, err := resolveField(n.Entity, Field{Name: n.Aggregate.Field})
			if err != nil {
				return nil, fmt.Errorf("query: aggregate: %w", err)
			}
			if spec.kind != kindNumber {
				return nil, fmt.Errorf("query: aggregate field %q is not numeric", n.Aggregate.Field)
			}
		}
		if len(n.OrderBy) > 0 {
			return nil, fmt.Errorf("query: orderBy cannot be combined with aggregate (rows are ordered by the aggregate value)")
		}
		if len(n.Select) > 0 {
			return nil, fmt.Errorf("query: select cannot be combined with aggregate")
		}
	}
	if len(n.OrderBy) == 0 && n.Aggregate == nil {
		// Aggregated rows are ordered by the aggregate value; everything
		// else defaults to the entity's principal score.
		n.OrderBy = []Order{defaultOrder(n.Entity)}
	}
	for i, o := range n.OrderBy {
		spec, err := resolveField(n.Entity, o.Field)
		if err != nil {
			return nil, fmt.Errorf("query: orderBy[%d]: %w", i, err)
		}
		if !spec.orderable {
			return nil, fmt.Errorf("query: orderBy[%d]: field %q is not orderable", i, o.Field.Name)
		}
	}
	for i, name := range n.Select {
		spec, err := resolveField(n.Entity, Field{Name: name})
		if err != nil {
			return nil, fmt.Errorf("query: select[%d]: %w", i, err)
		}
		if !spec.selectable {
			return nil, fmt.Errorf("query: select[%d]: field %q is not selectable", i, name)
		}
	}
	if len(n.Select) > 1 {
		// Canonical order and no duplicates: projections are a set.
		sel := append([]string(nil), n.Select...)
		sort.Strings(sel)
		dedup := sel[:1]
		for _, s := range sel[1:] {
			if s != dedup[len(dedup)-1] {
				dedup = append(dedup, s)
			}
		}
		n.Select = dedup
	}
	n.normalized = true
	return &n, nil
}

func defaultOrder(e Entity) Order {
	switch e {
	case EntityDomains:
		return Order{Field: Field{Name: FieldSum}, Desc: true}
	default:
		return Order{Field: Field{Name: FieldInfluence}, Desc: true}
	}
}

func validatePredicate(entity Entity, p *Predicate, depth int) error {
	if p == nil {
		return nil
	}
	if depth > maxDepth {
		return fmt.Errorf("predicate nesting deeper than %d", maxDepth)
	}
	set := 0
	if len(p.And) > 0 {
		set++
	}
	if len(p.Or) > 0 {
		set++
	}
	if p.Not != nil {
		set++
	}
	if p.Cmp != nil {
		set++
	}
	if set != 1 {
		return fmt.Errorf("predicate must have exactly one of and/or/not or be a comparison")
	}
	for _, kid := range p.And {
		if err := validatePredicate(entity, kid, depth+1); err != nil {
			return err
		}
	}
	for _, kid := range p.Or {
		if err := validatePredicate(entity, kid, depth+1); err != nil {
			return err
		}
	}
	if p.Not != nil {
		return validatePredicate(entity, p.Not, depth+1)
	}
	if c := p.Cmp; c != nil {
		spec, err := resolveField(entity, c.Field)
		if err != nil {
			return err
		}
		switch c.Op {
		case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		default:
			return fmt.Errorf("unknown op %q", c.Op)
		}
		if c.Kind != spec.kind {
			return fmt.Errorf("field %q expects a %s value", c.Field.Name, kindName(spec.kind))
		}
		if c.Kind == kindString && c.Op != OpEq && c.Op != OpNe {
			return fmt.Errorf("field %q supports only eq/ne", c.Field.Name)
		}
		if c.Kind == kindNumber && (math.IsNaN(c.Num) || math.IsInf(c.Num, 0)) {
			return fmt.Errorf("field %q compared against a non-finite number", c.Field.Name)
		}
	}
	return nil
}

func kindName(k valueKind) string {
	switch k {
	case kindTime:
		return "RFC3339 time"
	case kindString:
		return "string"
	default:
		return "number"
	}
}

// Key returns the canonical cache key of the query: the compact JSON of
// its normalized form (map-valued weights marshal with sorted keys, so
// equal queries produce equal keys). It never mutates the query, so a
// decoded or normalized *Query is safe to share across goroutines — the
// marshal is cheap enough to repeat rather than memoize behind a lock.
func (q *Query) Key() (string, error) {
	n, err := q.Normalize()
	if err != nil {
		return "", err
	}
	data, err := n.MarshalJSON()
	if err != nil {
		return "", err
	}
	return string(data), nil
}
