package query

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"mass/internal/blog"
	"mass/internal/classify"
	"mass/internal/influence"
	"mass/internal/rank"
	"mass/internal/synth"
)

// fixture is one analyzed corpus shared by the package tests.
type fixture struct {
	c   *blog.Corpus
	res *influence.Result
}

var (
	fixOnce sync.Once
	fix     fixture
)

// testFixture analyzes a small synthetic corpus (with a classifier, so
// the domain facets are meaningful) exactly once.
func testFixture(t testing.TB) fixture {
	fixOnce.Do(func() {
		c, _, err := synth.Generate(synth.Config{Seed: 7, Bloggers: 60, Posts: 400})
		if err != nil {
			panic(err)
		}
		nb, err := classify.TrainNaiveBayes(synth.TrainingExamples(nil, 20, 8))
		if err != nil {
			panic(err)
		}
		an, err := influence.NewAnalyzer(influence.Config{}, nb)
		if err != nil {
			panic(err)
		}
		res, err := an.Analyze(c)
		if err != nil {
			panic(err)
		}
		fix = fixture{c: c, res: res}
	})
	return fix
}

func mustExecute(t *testing.T, q *Query) *Result {
	t.Helper()
	f := testFixture(t)
	r, err := Execute(f.c, f.res, q)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	return r
}

func someDomain(t *testing.T) string {
	t.Helper()
	d := testFixture(t).res.Domains()
	if len(d) == 0 {
		t.Fatal("fixture has no domains")
	}
	return d[0]
}

// TestRankedFastPath: the unfiltered descending top-k must be served from
// the precomputed rankings and match them exactly.
func TestRankedFastPath(t *testing.T) {
	f := testFixture(t)
	r := mustExecute(t, Bloggers().Limit(5).Build())
	if r.Plan != "ranked/general" {
		t.Fatalf("plan = %q, want ranked/general", r.Plan)
	}
	want := f.res.TopGeneral(5)
	if len(r.Rows) != len(want) {
		t.Fatalf("rows = %d, want %d", len(r.Rows), len(want))
	}
	for i, e := range want {
		if r.Rows[i].ID != e.ID || r.Rows[i].Score != e.Score {
			t.Fatalf("row %d = %+v, want %+v", i, r.Rows[i], e)
		}
	}
	if r.Total != len(f.c.Bloggers) {
		t.Fatalf("total = %d, want %d", r.Total, len(f.c.Bloggers))
	}

	dom := someDomain(t)
	r = mustExecute(t, Bloggers().OrderBy(Desc(DomainKey(dom))).Limit(4).Offset(2).Build())
	if r.Plan != "ranked/domain" {
		t.Fatalf("plan = %q, want ranked/domain", r.Plan)
	}
	wantDom := f.res.TopDomain(dom, 6)[2:]
	for i, e := range wantDom {
		if r.Rows[i].ID != e.ID || r.Rows[i].Score != e.Score {
			t.Fatalf("domain row %d = %+v, want %+v", i, r.Rows[i], e)
		}
	}
}

// TestScanMatchesRankedOrder: a scan forced by a trivially-true filter
// must produce exactly the ranked ordering — the two executors implement
// one total order.
func TestScanMatchesRankedOrder(t *testing.T) {
	f := testFixture(t)
	r := mustExecute(t, Bloggers().
		Where(F(FieldInfluence).Ge(0)).
		OrderBy(Desc(FieldInfluence)).
		Limit(10).Build())
	if !strings.HasPrefix(r.Plan, "scan/") {
		t.Fatalf("plan = %q, want a scan", r.Plan)
	}
	want := f.res.TopGeneral(10)
	for i, e := range want {
		if r.Rows[i].ID != e.ID || r.Rows[i].Score != e.Score {
			t.Fatalf("row %d = %+v, want %+v", i, r.Rows[i], e)
		}
	}
}

// TestInterestMatchesTopK: ordering by an interest vector must reproduce
// rank.TopK over InterestScores bit for bit (the advert scenario).
func TestInterestMatchesTopK(t *testing.T) {
	f := testFixture(t)
	domains := f.res.Domains()
	iv := map[string]float64{domains[0]: 0.7, domains[len(domains)-1]: 0.3}
	want := rank.TopK(f.res.InterestScores(iv), 7)
	r := mustExecute(t, Bloggers().OrderBy(DescInterest(iv)).Limit(7).Build())
	if len(r.Rows) != len(want) {
		t.Fatalf("rows = %d, want %d", len(r.Rows), len(want))
	}
	for i, e := range want {
		if r.Rows[i].ID != e.ID || r.Rows[i].Score != e.Score {
			t.Fatalf("row %d = %+v, want %+v", i, r.Rows[i], e)
		}
	}
}

// TestFilteredScanAgainstReference cross-checks the heap-based scan
// against a naive filter+sort reference over several predicates.
func TestFilteredScanAgainstReference(t *testing.T) {
	f := testFixture(t)
	dom := someDomain(t)
	d := f.res.Dense()

	// Median-ish thresholds so the filters actually split the corpus.
	var infSum, domSum float64
	slot, _ := f.res.DomainSlot(dom)
	nd := len(d.Domains)
	for i := range d.Bloggers {
		infSum += d.Influence[i]
		domSum += d.DomainScores[i*nd+slot]
	}
	infThresh := infSum / float64(len(d.Bloggers))
	domThresh := domSum / float64(len(d.Bloggers))

	q := Bloggers().
		Where(And(
			F(FieldInfluence).Gt(infThresh),
			Or(Domain(dom).Ge(domThresh), F(FieldPosts).Ge(10)),
			Not(F(FieldGL).Lt(0)),
		)).
		OrderBy(Desc(DomainKey(dom)), Asc(FieldInfluence)).
		Limit(8).Offset(1).Build()
	r := mustExecute(t, q)

	// Naive reference.
	type ref struct {
		id       string
		domScore float64
		inf      float64
	}
	var matched []ref
	for i, b := range d.Bloggers {
		inf := d.Influence[i]
		ds := d.DomainScores[i*nd+slot]
		posts := float64(len(f.c.PostsBy(b)))
		if inf > infThresh && (ds >= domThresh || posts >= 10) && !(d.GL[i] < 0) {
			matched = append(matched, ref{id: string(b), domScore: ds, inf: inf})
		}
	}
	if r.Total != len(matched) {
		t.Fatalf("total = %d, want %d", r.Total, len(matched))
	}
	if len(matched) < 3 {
		t.Fatalf("degenerate fixture: only %d matches", len(matched))
	}
	// Sort: domain desc, influence asc, id asc.
	for i := 0; i < len(matched); i++ {
		for j := i + 1; j < len(matched); j++ {
			a, b := matched[i], matched[j]
			swap := false
			switch {
			case a.domScore != b.domScore:
				swap = a.domScore < b.domScore
			case a.inf != b.inf:
				swap = a.inf > b.inf
			default:
				swap = a.id > b.id
			}
			if swap {
				matched[i], matched[j] = matched[j], matched[i]
			}
		}
	}
	end := 1 + 8
	if end > len(matched) {
		end = len(matched)
	}
	window := matched[1:end]
	if len(r.Rows) != len(window) {
		t.Fatalf("rows = %d, want %d", len(r.Rows), len(window))
	}
	for i, w := range window {
		if r.Rows[i].ID != w.id || r.Rows[i].Score != w.domScore {
			t.Fatalf("row %d = %+v, want %+v", i, r.Rows[i], w)
		}
	}
}

// TestPostPredicates exercises the post-side facets: time range, author
// equality, comment count, novelty.
func TestPostPredicates(t *testing.T) {
	f := testFixture(t)
	d := f.res.Dense()
	posts := make([]*blog.Post, len(d.Posts))
	for i, pid := range d.Posts {
		posts[i] = f.c.Posts[pid]
	}
	// Pick a window covering roughly the middle half of the corpus span.
	var lo, hi time.Time
	for _, p := range posts {
		if lo.IsZero() || p.Posted.Before(lo) {
			lo = p.Posted
		}
		if p.Posted.After(hi) {
			hi = p.Posted
		}
	}
	span := hi.Sub(lo)
	from := lo.Add(span / 4)
	to := hi.Add(-span / 4)
	author := posts[0].Author

	q := Posts().
		Where(And(
			F(FieldPosted).Since(from),
			F(FieldPosted).Until(to),
			Or(F(FieldAuthor).Is(string(author)), F(FieldComments).Ge(2)),
			F(FieldNovelty).Gt(0),
		)).
		OrderBy(Desc(FieldQuality)).
		Limit(1000).Build()
	r := mustExecute(t, q)
	if r.Plan != "scan/posts" {
		t.Fatalf("plan = %q", r.Plan)
	}

	want := 0
	for i, p := range posts {
		inWindow := !p.Posted.Before(from) && !p.Posted.After(to)
		if inWindow && (p.Author == author || len(p.Comments) >= 2) && d.Novelty[i] > 0 {
			want++
		}
	}
	if r.Total != want || len(r.Rows) != want {
		t.Fatalf("total = %d rows = %d, want %d", r.Total, len(r.Rows), want)
	}
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].Score > r.Rows[i-1].Score {
			t.Fatalf("rows not descending by quality at %d", i)
		}
	}
}

// TestProjection: selected fields ride along as a per-row field map.
func TestProjection(t *testing.T) {
	f := testFixture(t)
	r := mustExecute(t, Bloggers().Select(FieldGL, FieldPosts).Limit(3).Build())
	for _, row := range r.Rows {
		bi, ok := f.res.BloggerIndex(blog.BloggerID(row.ID))
		if !ok {
			t.Fatalf("unknown row ID %q", row.ID)
		}
		d := f.res.Dense()
		if row.Fields[FieldGL] != d.GL[bi] {
			t.Fatalf("gl = %v, want %v", row.Fields[FieldGL], d.GL[bi])
		}
		if int(row.Fields[FieldPosts]) != len(f.c.PostsBy(blog.BloggerID(row.ID))) {
			t.Fatalf("posts = %v", row.Fields[FieldPosts])
		}
	}
}

// TestDomainsEntity: per-domain aggregates with filtering and ordering.
func TestDomainsEntity(t *testing.T) {
	f := testFixture(t)
	r := mustExecute(t, Domains().Select(FieldCount, FieldMean).Limit(100).Build())
	if r.Plan != "domains" {
		t.Fatalf("plan = %q", r.Plan)
	}
	d := f.res.Dense()
	if len(r.Rows) != len(d.Domains) {
		t.Fatalf("rows = %d, want %d", len(r.Rows), len(d.Domains))
	}
	// Reference: sum per domain.
	nd := len(d.Domains)
	sums := make(map[string]float64)
	counts := make(map[string]float64)
	for bi := range d.Bloggers {
		for di, s := range d.DomainScores[bi*nd : (bi+1)*nd] {
			if s != 0 {
				sums[d.Domains[di]] += s
				counts[d.Domains[di]]++
			}
		}
	}
	for i, row := range r.Rows {
		if row.Score != sums[row.ID] {
			t.Fatalf("sum(%s) = %v, want %v", row.ID, row.Score, sums[row.ID])
		}
		if row.Fields[FieldCount] != counts[row.ID] {
			t.Fatalf("count(%s) = %v, want %v", row.ID, row.Fields[FieldCount], counts[row.ID])
		}
		if i > 0 && row.Score > r.Rows[i-1].Score {
			t.Fatal("domain rows not descending by sum")
		}
	}

	// Filter: domains with at least one contributing blogger.
	r = mustExecute(t, Domains().Where(F(FieldCount).Gt(0)).OrderBy(Asc(FieldMean)).Limit(100).Build())
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].Score < r.Rows[i-1].Score {
			t.Fatal("domain rows not ascending by mean")
		}
	}
}

// TestAggregatePerDomain: grouping filtered posts per domain.
func TestAggregatePerDomain(t *testing.T) {
	f := testFixture(t)
	r := mustExecute(t, Posts().
		Where(F(FieldComments).Ge(1)).
		AggregatePerDomain(AggMean, FieldNovelty).
		Limit(100).Build())
	if r.Plan != "aggregate" {
		t.Fatalf("plan = %q", r.Plan)
	}
	d := f.res.Dense()
	nd := len(d.Domains)
	sums := make(map[string]float64)
	counts := make(map[string]float64)
	for i, pid := range d.Posts {
		if len(f.c.Posts[pid].Comments) < 1 {
			continue
		}
		for di, w := range d.PostDomains[i*nd : (i+1)*nd] {
			if w != 0 {
				counts[d.Domains[di]]++
				sums[d.Domains[di]] += d.Novelty[i]
			}
		}
	}
	for _, row := range r.Rows {
		want := 0.0
		if counts[row.ID] > 0 {
			want = sums[row.ID] / counts[row.ID]
		}
		if row.Score != want {
			t.Fatalf("mean novelty(%s) = %v, want %v", row.ID, row.Score, want)
		}
	}
}

// TestValidation rejects malformed queries with useful errors.
func TestValidation(t *testing.T) {
	f := testFixture(t)
	for name, q := range map[string]*Query{
		"bad entity":            {Entity: "users"},
		"unknown field":         Bloggers().Where(F("karma").Gt(1)).Build(),
		"post field on blogger": Bloggers().Where(F(FieldNovelty).Gt(0)).Build(),
		"string op on number":   Bloggers().Where(F(FieldInfluence).Is("x")).Build(),
		"author lt":             Posts().Where(&Predicate{Cmp: &Comparison{Field: Field{Name: FieldAuthor}, Op: OpLt, Kind: kindString, Str: "a"}}).Build(),
		"interest no weights":   Bloggers().OrderBy(Desc(FieldInterest)).Build(),
		"weights on plain":      Bloggers().OrderBy(Order{Field: Field{Name: FieldInfluence, Weights: map[string]float64{"x": 1}}, Desc: true}).Build(),
		"aggregate on domains":  Domains().AggregatePerDomain(AggSum, "").Build(),
		"aggregate + orderBy":   Posts().AggregatePerDomain(AggSum, "").OrderBy(Desc(FieldInfluence)).Build(),
		"aggregate + select":    Posts().AggregatePerDomain(AggSum, "").Select(FieldQuality).Build(),
		"negative offset":       Bloggers().Offset(-1).Build(),
		"negative limit":        Bloggers().Limit(-5).Build(),
		"select author":         Posts().Select(FieldAuthor).Build(),
		"empty predicate":       Bloggers().Where(&Predicate{}).Build(),
	} {
		if _, err := Execute(f.c, f.res, q); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

// TestDecodeRoundTrip: a builder query marshals to wire JSON that decodes
// back to the same normalized form.
func TestDecodeRoundTrip(t *testing.T) {
	dom := someDomain(t)
	q := Bloggers().
		Where(And(F(FieldInfluence).Gt(0.1), Domain(dom).Ge(0.01))).
		OrderBy(DescInterest(map[string]float64{dom: 1})).
		Select(FieldGL).
		Limit(5).Offset(2).Build()
	data, err := json.Marshal(q)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode(%s): %v", data, err)
	}
	k1, err := q.Key()
	if err != nil {
		t.Fatal(err)
	}
	k2, err := back.Key()
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("keys differ:\n%s\n%s", k1, k2)
	}
}

// TestDecodeStrict: typos and malformed values must be decode errors,
// never silently ignored clauses.
func TestDecodeStrict(t *testing.T) {
	for name, body := range map[string]string{
		"unknown top-level": `{"entity":"bloggers","wherre":{}}`,
		"unknown pred key":  `{"entity":"bloggers","where":{"feild":"influence","op":"gt","value":1}}`,
		"bad op":            `{"entity":"bloggers","where":{"field":"influence","op":"gte","value":1}}`,
		"missing value":     `{"entity":"bloggers","where":{"field":"influence","op":"gt"}}`,
		"bool value":        `{"entity":"bloggers","where":{"field":"influence","op":"gt","value":true}}`,
		"bad time":          `{"entity":"posts","where":{"field":"posted","op":"ge","value":"yesterday"}}`,
		"mixed node":        `{"entity":"bloggers","where":{"and":[],"field":"influence","op":"gt","value":1}}`,
		"trailing data":     `{"entity":"bloggers"} {"entity":"posts"}`,
		"not json":          `{"entity":`,
		"array root":        `[{"entity":"bloggers"}]`,
	} {
		if _, err := Decode([]byte(body)); err == nil {
			t.Errorf("%s: no error for %s", name, body)
		}
	}
	// And the happy path.
	q, err := Decode([]byte(`{
		"entity": "posts",
		"where": {"and": [
			{"field": "posted", "op": "ge", "value": "2009-01-01T00:00:00Z"},
			{"not": {"field": "author", "op": "eq", "value": "blogger0001"}},
			{"or": [
				{"field": "novelty", "op": "gt", "value": 0.5},
				{"field": "sentiment", "op": "ge", "value": 0.4}
			]}
		]},
		"orderBy": [{"field": "quality", "desc": true}],
		"select": ["novelty", "comments"],
		"limit": 7
	}`))
	if err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}
	f := testFixture(t)
	if _, err := Execute(f.c, f.res, q); err != nil {
		t.Fatalf("decoded query failed to execute: %v", err)
	}
}

// TestDeepNesting: predicate depth is bounded, not stack-fatal.
func TestDeepNesting(t *testing.T) {
	body := `{"entity":"bloggers","where":` +
		strings.Repeat(`{"not":`, 200) +
		`{"field":"influence","op":"gt","value":0}` +
		strings.Repeat(`}`, 200) + `}`
	if _, err := Decode([]byte(body)); err == nil {
		t.Fatal("deep nesting accepted")
	}
}

// TestCache: identical queries memoize per seq; a new seq evicts.
func TestCache(t *testing.T) {
	f := testFixture(t)
	cache := NewCache()
	run := func(seq uint64, q *Query) {
		t.Helper()
		if _, err := cache.Get(seq, q, func(n *Query) (*Result, error) {
			return Execute(f.c, f.res, n)
		}); err != nil {
			t.Fatal(err)
		}
	}
	q := Bloggers().Where(F(FieldInfluence).Gt(0)).Limit(5).Build()
	run(1, q)
	run(1, q)
	// Spelled differently, same normalized query: limit 0 → default is
	// distinct from limit 5, so use an equal-normalizing variant.
	run(1, Bloggers().Where(F(FieldInfluence).Gt(0)).Limit(5).OrderBy(Desc(FieldInfluence)).Build())
	if n := cache.Computes(); n != 1 {
		t.Fatalf("computes = %d, want 1", n)
	}
	run(2, q)
	if n := cache.Computes(); n != 2 {
		t.Fatalf("computes = %d after seq bump, want 2", n)
	}
	// Invalid queries are not cached and error out.
	if _, err := cache.Get(2, &Query{Entity: "nope"}, nil); err == nil {
		t.Fatal("invalid query accepted")
	}
}

// TestCacheBounded: distinct queries within one generation cannot grow
// the memo without bound (static servers never advance the seq, so the
// stale-seq eviction alone is not enough).
func TestCacheBounded(t *testing.T) {
	f := testFixture(t)
	cache := NewCache()
	for i := 0; i < DefaultCacheEntries+50; i++ {
		q := Bloggers().Where(F(FieldInfluence).Gt(float64(i) * 1e-9)).Limit(1).Build()
		if _, err := cache.Get(1, q, func(n *Query) (*Result, error) {
			return Execute(f.c, f.res, n)
		}); err != nil {
			t.Fatal(err)
		}
	}
	cache.mu.Lock()
	size := len(cache.entries)
	cache.mu.Unlock()
	if size > DefaultCacheEntries {
		t.Fatalf("cache grew to %d entries (cap %d)", size, DefaultCacheEntries)
	}
}

// TestScanAllocsBounded asserts the headline property of the planned
// executor: the filtered, ordered top-k path allocates O(plan + k) —
// no per-blogger maps or slices — so allocations do not grow with the
// corpus.
func TestScanAllocsBounded(t *testing.T) {
	small, _, err := synth.Generate(synth.Config{Seed: 11, Bloggers: 50, Posts: 200})
	if err != nil {
		t.Fatal(err)
	}
	big, _, err := synth.Generate(synth.Config{Seed: 11, Bloggers: 400, Posts: 1600})
	if err != nil {
		t.Fatal(err)
	}
	nb, err := classify.TrainNaiveBayes(synth.TrainingExamples(nil, 20, 8))
	if err != nil {
		t.Fatal(err)
	}
	an, err := influence.NewAnalyzer(influence.Config{}, nb)
	if err != nil {
		t.Fatal(err)
	}
	measure := func(c *blog.Corpus) float64 {
		res, err := an.Analyze(c)
		if err != nil {
			t.Fatal(err)
		}
		dom := res.Domains()[0]
		q := Bloggers().
			Where(And(F(FieldInfluence).Gt(0), Domain(dom).Ge(0))).
			OrderBy(Desc(DomainKey(dom))).
			Limit(10).Build()
		// Warm the lazy rankings etc. once.
		if _, err := Execute(c, res, q); err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(20, func() {
			if _, err := Execute(c, res, q); err != nil {
				t.Fatal(err)
			}
		})
	}
	allocsSmall := measure(small)
	allocsBig := measure(big)
	if allocsBig > allocsSmall+4 {
		t.Fatalf("allocations grow with corpus size: %v (50 bloggers) vs %v (400 bloggers)", allocsSmall, allocsBig)
	}
	if allocsBig > 60 {
		t.Fatalf("filtered top-k allocates too much: %v allocs/op", allocsBig)
	}
}

// TestResultJSONShape pins the wire shape of a result row.
func TestResultJSONShape(t *testing.T) {
	r := mustExecute(t, Bloggers().Limit(1).Select(FieldGL).Build())
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"entity":"bloggers"`, `"rows":[{"id":`, `"score":`, `"fields":{"gl":`, `"total":`, `"plan":"ranked/general"`} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("result JSON missing %s:\n%s", want, data)
		}
	}
}

// TestUnknownDomainConsistency: ranked and scan paths agree on unknown
// domains (everyone scores zero, ID order).
func TestUnknownDomainConsistency(t *testing.T) {
	ranked := mustExecute(t, Bloggers().OrderBy(Desc(DomainKey("NoSuchDomain"))).Limit(5).Build())
	scanned := mustExecute(t, Bloggers().
		Where(F(FieldInfluence).Ge(0)).
		OrderBy(Desc(DomainKey("NoSuchDomain"))).
		Limit(5).Build())
	if ranked.Plan == scanned.Plan {
		t.Fatalf("expected distinct plans, both %q", ranked.Plan)
	}
	if fmt.Sprint(ranked.Rows) != fmt.Sprint(scanned.Rows) {
		t.Fatalf("plans disagree:\nranked:  %v\nscanned: %v", ranked.Rows, scanned.Rows)
	}
}

// TestCacheLRURecency: eviction at the cap is least-recently-used, so a
// standing query that keeps being served survives while one-off
// explorations age out.
func TestCacheLRURecency(t *testing.T) {
	f := testFixture(t)
	cache := NewCacheSize(2)
	run := func(q *Query) {
		t.Helper()
		if _, err := cache.Get(1, q, func(n *Query) (*Result, error) {
			return Execute(f.c, f.res, n)
		}); err != nil {
			t.Fatal(err)
		}
	}
	hot := Bloggers().Limit(5).Build()
	cold := Bloggers().Limit(6).Build()
	run(hot)                         // miss: compute 1
	run(cold)                        // miss: compute 2
	run(hot)                         // hit, and refreshes hot's recency
	run(Bloggers().Limit(7).Build()) // miss: compute 3, evicts cold (LRU)
	run(hot)                         // still resident: no recompute
	if n := cache.Computes(); n != 3 {
		t.Fatalf("computes = %d, want 3 (hot entry evicted despite recency)", n)
	}
	run(cold) // was evicted: compute 4
	if n := cache.Computes(); n != 4 {
		t.Fatalf("computes = %d, want 4", n)
	}
	if got := cache.Len(); got != 2 {
		t.Fatalf("len = %d, want cap 2", got)
	}
}
