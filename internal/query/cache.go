package query

import "sync"

// cacheKey identifies one memoizable execution: the analysis generation
// plus the normalized query serialization.
type cacheKey struct {
	seq  uint64
	norm string
}

// maxCacheEntries bounds the memo. Unlike the trend cache, whose key
// space is a pair of capped integers, the query key space is arbitrary
// client-controlled JSON — without a cap, a static server (whose seq
// never moves, so stale-seq eviction never fires) could be grown without
// bound by distinct queries. At the cap, arbitrary entries are dropped:
// this is a memo, losing one only costs a recompute.
const maxCacheEntries = 1024

// Cache memoizes executed queries per (snapshot seq, normalized query),
// in the spirit of the API layer's trend cache: repeated identical
// queries against one generation cost a map lookup; when a newer
// generation shows up, the stale generation's entries are evicted on the
// next store. Cached *Results are shared — callers must not mutate them.
type Cache struct {
	mu       sync.Mutex
	entries  map[cacheKey]*Result
	computes int64
}

// NewCache returns an empty cache.
func NewCache() *Cache { return &Cache{} }

// Get returns the cached result for (seq, q), computing and storing it on
// a miss. The query is normalized first, so differently-spelled equal
// queries share one entry; a query that fails validation is never cached.
func (c *Cache) Get(seq uint64, q *Query, compute func(n *Query) (*Result, error)) (*Result, error) {
	n, err := q.Normalize()
	if err != nil {
		return nil, err
	}
	norm, err := n.Key()
	if err != nil {
		return nil, err
	}
	key := cacheKey{seq: seq, norm: norm}
	c.mu.Lock()
	if res, ok := c.entries[key]; ok {
		c.mu.Unlock()
		return res, nil
	}
	c.computes++
	c.mu.Unlock()
	// Execute outside the lock: a slow scan must not block cached reads.
	// Concurrent first queries may duplicate work once; both compute the
	// same deterministic result.
	res, err := compute(n)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.entries == nil {
		c.entries = make(map[cacheKey]*Result)
	}
	// Evict strictly older generations only: a late store from a reader
	// still pinning an old snapshot must not wipe the live generation's
	// memo (the entry cap bounds whatever old pins keep inserting).
	for k := range c.entries {
		if k.seq < seq {
			delete(c.entries, k)
		}
	}
	for k := range c.entries {
		if len(c.entries) < maxCacheEntries {
			break
		}
		delete(c.entries, k)
	}
	c.entries[key] = res
	c.mu.Unlock()
	return res, nil
}

// Computes reports the number of cache misses so far (for tests and
// metrics).
func (c *Cache) Computes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.computes
}
