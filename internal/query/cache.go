package query

import (
	"container/list"
	"sync"
)

// cacheKey identifies one memoizable execution: the analysis generation
// plus the normalized query serialization.
type cacheKey struct {
	seq  uint64
	norm string
}

// cacheEntry is one LRU node payload.
type cacheEntry struct {
	key cacheKey
	res *Result
}

// DefaultCacheEntries bounds the memo. Unlike the trend cache, whose key
// space is a pair of capped integers, the query key space is arbitrary
// client-controlled JSON — without a cap, a static server (whose seq
// never moves, so stale-seq eviction never fires) could be grown without
// bound by distinct queries, and a hub full of distinct standing
// subscriptions would pin one entry per query per generation. At the
// cap the least-recently-used entry is evicted: this is a memo, losing
// one only costs a recompute, and LRU keeps the hot dashboard queries
// resident while one-off explorations age out.
const DefaultCacheEntries = 1024

// Cache memoizes executed queries per (snapshot seq, normalized query),
// in the spirit of the API layer's trend cache: repeated identical
// queries against one generation cost a map lookup; when a newer
// generation shows up, the stale generation's entries are evicted on the
// next store; at capacity the least-recently-used entry goes first.
// Cached *Results are shared — callers must not mutate them.
type Cache struct {
	mu       sync.Mutex
	entries  map[cacheKey]*list.Element
	lru      *list.List // front = most recently used
	cap      int
	computes int64
}

// NewCache returns an empty cache with the default entry cap.
func NewCache() *Cache { return NewCacheSize(DefaultCacheEntries) }

// NewCacheSize returns an empty cache holding at most capEntries results
// (values below 1 fall back to the default).
func NewCacheSize(capEntries int) *Cache {
	if capEntries < 1 {
		capEntries = DefaultCacheEntries
	}
	return &Cache{cap: capEntries}
}

// Get returns the cached result for (seq, q), computing and storing it on
// a miss. The query is normalized first, so differently-spelled equal
// queries share one entry; a query that fails validation is never cached.
func (c *Cache) Get(seq uint64, q *Query, compute func(n *Query) (*Result, error)) (*Result, error) {
	n, err := q.Normalize()
	if err != nil {
		return nil, err
	}
	norm, err := n.Key()
	if err != nil {
		return nil, err
	}
	key := cacheKey{seq: seq, norm: norm}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		res := el.Value.(*cacheEntry).res
		c.mu.Unlock()
		return res, nil
	}
	c.computes++
	c.mu.Unlock()
	// Execute outside the lock: a slow scan must not block cached reads.
	// Concurrent first queries may duplicate work once; both compute the
	// same deterministic result.
	res, err := compute(n)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.store(key, res)
	c.mu.Unlock()
	return res, nil
}

// store inserts under the lock: stale generations are dropped first,
// then the LRU tail until the cap holds. Evicting strictly older
// generations only means a late store from a reader still pinning an old
// snapshot cannot wipe the live generation's memo (the LRU cap bounds
// whatever old pins keep inserting).
func (c *Cache) store(key cacheKey, res *Result) {
	if c.entries == nil {
		c.entries = make(map[cacheKey]*list.Element)
		c.lru = list.New()
	}
	if el, ok := c.entries[key]; ok {
		// A concurrent compute already stored it; refresh recency only.
		c.lru.MoveToFront(el)
		return
	}
	for k, el := range c.entries {
		if k.seq < key.seq {
			c.lru.Remove(el)
			delete(c.entries, k)
		}
	}
	for len(c.entries) >= c.cap {
		tail := c.lru.Back()
		if tail == nil {
			break
		}
		c.lru.Remove(tail)
		delete(c.entries, tail.Value.(*cacheEntry).key)
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, res: res})
}

// Computes reports the number of cache misses so far (for tests and
// metrics).
func (c *Cache) Computes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.computes
}

// Len reports the number of resident entries (for tests and metrics).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
