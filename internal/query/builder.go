package query

import "time"

// Builder assembles a Query fluently:
//
//	q := query.Bloggers().
//		Where(query.And(
//			query.F(query.FieldInfluence).Gt(0.2),
//			query.Domain("Sports").Ge(0.05),
//		)).
//		OrderBy(query.Desc(query.DomainKey("Sports"))).
//		Limit(10).
//		Build()
//
// Build returns the raw AST; validation happens in Execute (or Normalize),
// so a builder chain never needs error handling mid-expression.
type Builder struct {
	q Query
}

// Bloggers starts a query over bloggers.
func Bloggers() *Builder { return &Builder{q: Query{Entity: EntityBloggers}} }

// Posts starts a query over posts.
func Posts() *Builder { return &Builder{q: Query{Entity: EntityPosts}} }

// Domains starts a query over per-domain aggregates.
func Domains() *Builder { return &Builder{q: Query{Entity: EntityDomains}} }

// Where sets the filter predicate (replacing any previous one).
func (b *Builder) Where(p *Predicate) *Builder { b.q.Where = p; return b }

// OrderBy sets the sort keys (replacing any previous ones).
func (b *Builder) OrderBy(orders ...Order) *Builder { b.q.OrderBy = orders; return b }

// Select projects extra fields into each row's fields object.
func (b *Builder) Select(fields ...string) *Builder { b.q.Select = fields; return b }

// Limit sets the page size (0 means DefaultLimit; negative is invalid).
func (b *Builder) Limit(n int) *Builder { b.q.Limit = n; return b }

// Offset sets the zero-based start of the page.
func (b *Builder) Offset(n int) *Builder { b.q.Offset = n; return b }

// AggregatePerDomain groups the filtered entities per domain. field names
// the aggregated facet; "" aggregates the per-domain weight itself.
func (b *Builder) AggregatePerDomain(op AggOp, field string) *Builder {
	b.q.Aggregate = &Aggregate{Op: op, Field: field}
	return b
}

// Build returns the assembled query.
func (b *Builder) Build() *Query { q := b.q; return &q }

// ------------------------------------------------------------ predicates

// And requires every sub-predicate to hold.
func And(ps ...*Predicate) *Predicate { return &Predicate{And: ps} }

// Or requires at least one sub-predicate to hold.
func Or(ps ...*Predicate) *Predicate { return &Predicate{Or: ps} }

// Not inverts a predicate.
func Not(p *Predicate) *Predicate { return &Predicate{Not: p} }

// FieldRef names a facet for comparison building.
type FieldRef struct{ f Field }

// F references a field by name (see the Field* constants and DomainKey).
func F(name string) FieldRef { return FieldRef{f: Field{Name: name}} }

// Domain references one domain's score column.
func Domain(name string) FieldRef { return F(DomainKey(name)) }

// Interest references the weighted domain dot product Inf(b, IV) · iv —
// the advertisement/recommendation facet.
func Interest(weights map[string]float64) FieldRef {
	return FieldRef{f: Field{Name: FieldInterest, Weights: weights}}
}

// EqualWeights builds the dropdown-mode interest vector: every selected
// domain gets equal weight, with duplicates accumulating — the paper's
// Fig. 3 option 2 semantics, shared by the advert endpoint and the CLIs.
// Empty or unknown names are kept: they contribute zero to every dot
// product, so sloppy client lists like ["Sports", ""] score identically
// to the pre-engine path instead of failing validation.
func EqualWeights(domains []string) map[string]float64 {
	iv := make(map[string]float64, len(domains))
	w := 1 / float64(len(domains))
	for _, d := range domains {
		iv[d] += w
	}
	return iv
}

func (r FieldRef) cmp(op Op, v float64) *Predicate {
	return &Predicate{Cmp: &Comparison{Field: r.f, Op: op, Kind: kindNumber, Num: v}}
}

// Eq / Ne / Lt / Le / Gt / Ge compare the facet against a number.
func (r FieldRef) Eq(v float64) *Predicate { return r.cmp(OpEq, v) }
func (r FieldRef) Ne(v float64) *Predicate { return r.cmp(OpNe, v) }
func (r FieldRef) Lt(v float64) *Predicate { return r.cmp(OpLt, v) }
func (r FieldRef) Le(v float64) *Predicate { return r.cmp(OpLe, v) }
func (r FieldRef) Gt(v float64) *Predicate { return r.cmp(OpGt, v) }
func (r FieldRef) Ge(v float64) *Predicate { return r.cmp(OpGe, v) }

// Since / Until bound a time facet (posted >= t / posted <= t).
func (r FieldRef) Since(t time.Time) *Predicate {
	return &Predicate{Cmp: &Comparison{Field: r.f, Op: OpGe, Kind: kindTime, Time: t}}
}
func (r FieldRef) Until(t time.Time) *Predicate {
	return &Predicate{Cmp: &Comparison{Field: r.f, Op: OpLe, Kind: kindTime, Time: t}}
}

// Is / IsNot compare a string facet (author).
func (r FieldRef) Is(s string) *Predicate {
	return &Predicate{Cmp: &Comparison{Field: r.f, Op: OpEq, Kind: kindString, Str: s}}
}
func (r FieldRef) IsNot(s string) *Predicate {
	return &Predicate{Cmp: &Comparison{Field: r.f, Op: OpNe, Kind: kindString, Str: s}}
}

// --------------------------------------------------------------- ordering

// Desc orders by a field, highest first.
func Desc(name string) Order { return Order{Field: Field{Name: name}, Desc: true} }

// Asc orders by a field, lowest first.
func Asc(name string) Order { return Order{Field: Field{Name: name}} }

// DescInterest orders by the weighted domain dot product, highest first.
func DescInterest(weights map[string]float64) Order {
	return Order{Field: Field{Name: FieldInterest, Weights: weights}, Desc: true}
}
