package query

import (
	"sync"
	"testing"

	"mass/internal/blog"
	"mass/internal/influence"
)

// fuzzFixture is a tiny analyzed corpus (no classifier, so it is cheap)
// used to execute whatever the fuzzer manages to decode.
var (
	fuzzOnce sync.Once
	fuzzC    *blog.Corpus
	fuzzRes  *influence.Result
)

func fuzzFixture() (*blog.Corpus, *influence.Result) {
	fuzzOnce.Do(func() {
		fuzzC = blog.Figure1Corpus()
		an, err := influence.NewAnalyzer(influence.Config{}, nil)
		if err != nil {
			panic(err)
		}
		fuzzRes, err = an.Analyze(fuzzC)
		if err != nil {
			panic(err)
		}
	})
	return fuzzC, fuzzRes
}

// FuzzDecode is the decoder's robustness contract: any byte soup either
// decodes into a query that executes cleanly, or fails with an error —
// it must never panic. (The API layer surfaces those errors as 400
// invalid_query.)
func FuzzDecode(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`{"entity":"bloggers"}`,
		`{"entity":"posts","limit":3}`,
		`{"entity":"domains","select":["count","mean"]}`,
		`{"entity":"bloggers","where":{"field":"influence","op":"gt","value":0.5}}`,
		`{"entity":"bloggers","where":{"and":[{"field":"gl","op":"ge","value":0},{"not":{"field":"posts","op":"lt","value":1}}]}}`,
		`{"entity":"bloggers","orderBy":[{"field":"interest","weights":{"Sports":0.5,"Travel":0.5},"desc":true}]}`,
		`{"entity":"posts","where":{"field":"posted","op":"ge","value":"2009-06-01T00:00:00Z"}}`,
		`{"entity":"posts","where":{"field":"author","op":"eq","value":"Amery"}}`,
		`{"entity":"posts","aggregate":{"op":"mean","field":"novelty"}}`,
		`{"entity":"bloggers","where":{"or":[]}}`,
		`{"entity":"bloggers","where":{"field":"domain:Sports","op":"ge","value":1e308}}`,
		`{"entity":"bloggers","where":{"field":"influence","op":"gt","value":1e400}}`,
		`{"entity":"bloggers","limit":-5,"offset":-1}`,
		`{"entity":"bloggers","limit":999999999,"offset":999999999}`,
		`{"entity":"bloggers","where":{"not":{"not":{"not":{"field":"ap","op":"ne","value":0}}}}}`,
		`[1,2,3]`,
		`"bloggers"`,
		`{"entity":"bloggers","where":{"field":"influence","op":"gt","value":{}}}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := Decode(data)
		if err != nil {
			return
		}
		// A successfully decoded query is the decoder's promise that it is
		// executable: run it to hold the promise (and to catch executor
		// panics on odd-but-valid input).
		c, res := fuzzFixture()
		if _, err := Execute(c, res, q); err != nil {
			t.Fatalf("decoded query failed to execute: %v\nquery: %s", err, data)
		}
	})
}
