package baseline

import (
	"math"
	"testing"

	"mass/internal/blog"
	"mass/internal/linkrank"
)

func TestNames(t *testing.T) {
	if (LiveIndex{}).Name() != "Live Index" ||
		(General{}).Name() != "General" ||
		(IFinder{}).Name() != "iFinder" {
		t.Fatal("ranker names changed; Table I headers depend on them")
	}
}

func TestLiveIndexIsPageRank(t *testing.T) {
	c := blog.Figure1Corpus()
	scores, err := LiveIndex{}.Rank(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := linkrank.CheckStochastic(toStringMap(scores), 1e-8); err != nil {
		t.Fatal(err)
	}
	// Amery receives 5 of the 8 links; she must top the list.
	for b, s := range scores {
		if b != "Amery" && s >= scores["Amery"] {
			t.Fatalf("Amery must top Live Index, but %s=%v >= %v", b, s, scores["Amery"])
		}
	}
}

func TestLiveIndexIgnoresPosts(t *testing.T) {
	// Two corpora with identical links but different posts must rank the
	// same under Live Index.
	c1 := blog.NewCorpus()
	c2 := blog.NewCorpus()
	for _, c := range []*blog.Corpus{c1, c2} {
		for _, id := range []string{"a", "b"} {
			_ = c.AddBlogger(&blog.Blogger{ID: blog.BloggerID(id)})
		}
		_ = c.AddLink("a", "b")
	}
	_ = c1.AddPost(&blog.Post{ID: "p", Author: "a", Body: "many words in this long post"})
	s1, err := LiveIndex{}.Rank(c1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := LiveIndex{}.Rank(c2)
	if err != nil {
		t.Fatal(err)
	}
	for b := range s1 {
		if math.Abs(s1[b]-s2[b]) > 1e-12 {
			t.Fatalf("Live Index must ignore posts: %s %v vs %v", b, s1[b], s2[b])
		}
	}
}

func TestGeneralMatchesInfluence(t *testing.T) {
	c := blog.Figure1Corpus()
	scores, err := General{}.Rank(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 9 {
		t.Fatalf("want 9 scores, got %d", len(scores))
	}
	// Amery dominates: 2 substantial posts, 3 comments, 5 in-links.
	for b, s := range scores {
		if b != "Amery" && s >= scores["Amery"] {
			t.Fatalf("Amery must top General: %s=%v", b, s)
		}
	}
}

func TestIFinderBasics(t *testing.T) {
	c := blog.Figure1Corpus()
	scores, err := IFinder{}.Rank(c)
	if err != nil {
		t.Fatal(err)
	}
	for b, s := range scores {
		if s < 0 {
			t.Fatalf("iFinder score for %s negative: %v", b, s)
		}
	}
	// Bloggers without posts have iIndex 0.
	if scores["Bob"] != 0 {
		t.Fatalf("Bob has no posts, iIndex = %v, want 0", scores["Bob"])
	}
	if scores["Amery"] <= 0 {
		t.Fatal("Amery must have positive iIndex")
	}
}

func TestIFinderCommentCountMatters(t *testing.T) {
	c := blog.NewCorpus()
	for _, id := range []string{"a", "b", "r1", "r2"} {
		_ = c.AddBlogger(&blog.Blogger{ID: blog.BloggerID(id)})
	}
	_ = c.AddPost(&blog.Post{ID: "pa", Author: "a", Body: "one two three four",
		Comments: []blog.Comment{
			{Commenter: "r1", Text: "x"}, {Commenter: "r2", Text: "y"},
		}})
	_ = c.AddPost(&blog.Post{ID: "pb", Author: "b", Body: "aa bb cc dd"})
	scores, err := IFinder{}.Rank(c)
	if err != nil {
		t.Fatal(err)
	}
	if scores["a"] <= scores["b"] {
		t.Fatalf("more comments must score higher: a=%v b=%v", scores["a"], scores["b"])
	}
}

func TestIFinderOutlinksLeak(t *testing.T) {
	// Same posts/comments; the blogger with more outlinks scores lower.
	c := blog.NewCorpus()
	for _, id := range []string{"a", "b", "t1", "t2"} {
		_ = c.AddBlogger(&blog.Blogger{ID: blog.BloggerID(id)})
	}
	_ = c.AddPost(&blog.Post{ID: "pa", Author: "a", Body: "one two three four"})
	_ = c.AddPost(&blog.Post{ID: "pb", Author: "b", Body: "aa bb cc dd"})
	// Both need an inlink so the flow is positive before the leak.
	_ = c.AddLink("t1", "a")
	_ = c.AddLink("t2", "b")
	_ = c.AddLink("a", "t1") // a leaks influence outward
	scores, err := IFinder{}.Rank(c)
	if err != nil {
		t.Fatal(err)
	}
	if scores["a"] >= scores["b"] {
		t.Fatalf("outlink leak violated: a=%v b=%v", scores["a"], scores["b"])
	}
}

func TestIFinderFlowClampedAtZero(t *testing.T) {
	c := blog.NewCorpus()
	for _, id := range []string{"a", "b"} {
		_ = c.AddBlogger(&blog.Blogger{ID: blog.BloggerID(id)})
	}
	_ = c.AddPost(&blog.Post{ID: "p", Author: "a", Body: "w1 w2 w3"})
	_ = c.AddLink("a", "b") // only outlinks, no comments: flow would be negative
	scores, err := IFinder{}.Rank(c)
	if err != nil {
		t.Fatal(err)
	}
	if scores["a"] != 0 {
		t.Fatalf("negative flow must clamp to 0, got %v", scores["a"])
	}
}

func TestIFinderMaxOverPosts(t *testing.T) {
	// iIndex takes the best post, not the sum: one great post beats two
	// mediocre ones of the same combined weight.
	c := blog.NewCorpus()
	for _, id := range []string{"one", "two", "r"} {
		_ = c.AddBlogger(&blog.Blogger{ID: blog.BloggerID(id)})
	}
	_ = c.AddPost(&blog.Post{ID: "big", Author: "one",
		Body: "w1 w2 w3 w4 w5 w6 w7 w8 w9 w10",
		Comments: []blog.Comment{
			{Commenter: "r", Text: "c1"}, {Commenter: "r", Text: "c2"},
		}})
	_ = c.AddPost(&blog.Post{ID: "small1", Author: "two", Body: "w1 w2 w3 w4 w5",
		Comments: []blog.Comment{{Commenter: "r", Text: "c3"}}})
	_ = c.AddPost(&blog.Post{ID: "small2", Author: "two", Body: "v1 v2 v3 v4 v5",
		Comments: []blog.Comment{{Commenter: "r", Text: "c4"}}})
	scores, err := IFinder{}.Rank(c)
	if err != nil {
		t.Fatal(err)
	}
	// one: 1.0 * 2 = 2; two: max(0.5*1, 0.5*1) = 0.5.
	if math.Abs(scores["one"]-2) > 1e-9 || math.Abs(scores["two"]-0.5) > 1e-9 {
		t.Fatalf("iIndex = %v, want one=2 two=0.5", scores)
	}
}

func TestRankersOnEmptyCorpus(t *testing.T) {
	c := blog.NewCorpus()
	for _, r := range []Ranker{LiveIndex{}, General{}, IFinder{}} {
		scores, err := r.Rank(c)
		if err != nil {
			t.Fatalf("%s on empty corpus: %v", r.Name(), err)
		}
		if len(scores) != 0 {
			t.Fatalf("%s must return empty scores", r.Name())
		}
	}
}

func toStringMap(m map[blog.BloggerID]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[string(k)] = v
	}
	return out
}
