// Package baseline implements the comparison systems from the paper's
// evaluation (Table I):
//
//   - General: the MASS overall influence score Inf(b) without the domain
//     split — "top 3 influential bloggers mined from general domain".
//   - LiveIndex: Microsoft Live Index, "based on traditional link
//     analysis" — reproduced as PageRank over the blog hyperlink graph.
//   - IFinder: the model of Agarwal et al., WSDM'08 [1], the paper's
//     representative "existing system", which scores posts by inlinks,
//     outlinks, comment count and post length without commenter identity,
//     attitude, or domains.
//
// All baselines implement Ranker so the experiment harness treats every
// system uniformly.
package baseline

import (
	"math"

	"mass/internal/blog"
	"mass/internal/influence"
	"mass/internal/linkrank"
	"mass/internal/textutil"
)

// Ranker scores every blogger in a corpus; higher is more influential.
type Ranker interface {
	// Name identifies the system in experiment reports.
	Name() string
	// Rank returns a score for every blogger in c.
	Rank(c *blog.Corpus) (map[blog.BloggerID]float64, error)
}

// LiveIndex ranks bloggers purely by link authority (PageRank), the
// traditional link-analysis stand-in for Microsoft Live Index [10].
type LiveIndex struct {
	// Options tunes the PageRank solver; zero value uses defaults.
	Options linkrank.Options
}

// Name implements Ranker.
func (LiveIndex) Name() string { return "Live Index" }

// Rank implements Ranker. The solve runs on the corpus's cached CSR view
// of the hyperlink graph (shared with the influence analyzer), so ranking
// pays only for the PageRank sweeps.
func (l LiveIndex) Rank(c *blog.Corpus) (map[blog.BloggerID]float64, error) {
	csr := c.LinkCSR()
	pr := linkrank.PageRankCSR(csr, l.Options)
	out := make(map[blog.BloggerID]float64, len(pr.Scores))
	for i, id := range csr.IDs {
		out[blog.BloggerID(id)] = pr.Scores[i]
	}
	return out, nil
}

// General ranks bloggers by the full MASS overall influence Inf(b) with no
// domain decomposition. This is the "General" row of Table I.
type General struct {
	// Config tunes the underlying influence model; zero value = paper
	// defaults.
	Config influence.Config
}

// Name implements Ranker.
func (General) Name() string { return "General" }

// Rank implements Ranker.
func (g General) Rank(c *blog.Corpus) (map[blog.BloggerID]float64, error) {
	a, err := influence.NewAnalyzer(g.Config, nil)
	if err != nil {
		return nil, err
	}
	res, err := a.Analyze(c)
	if err != nil {
		return nil, err
	}
	return res.BloggerScores, nil
}

// IFinder reproduces the WSDM'08 influential-blogger model [1]. A post's
// influence is
//
//	I(p) = w(λ_p) · (w_com·γ_p + w_in·ι_p − w_out·θ_p)
//
// where λ_p is the post length (weight = length normalized by the corpus
// max), γ_p the number of comments on p, ι_p the author's inlink count and
// θ_p the author's outlink count (the corpus records links at blogger
// granularity; the WSDM model's post-level links are approximated by the
// author's). A blogger's iIndex is the maximum influence over their posts
// — "a blogger is influential if s/he has at least one influential post".
type IFinder struct {
	// WComment, WIn, WOut weigh comments, inlinks and outlinks. Zero
	// values default to 1, 1, 0.5 (the WSDM'08 defaults weigh incoming
	// influence fully and outgoing influence as a leak).
	WComment, WIn, WOut float64
}

// Name implements Ranker.
func (IFinder) Name() string { return "iFinder" }

// Rank implements Ranker.
func (f IFinder) Rank(c *blog.Corpus) (map[blog.BloggerID]float64, error) {
	wCom, wIn, wOut := f.WComment, f.WIn, f.WOut
	if wCom == 0 {
		wCom = 1
	}
	if wIn == 0 {
		wIn = 1
	}
	if wOut == 0 {
		wOut = 0.5
	}
	maxLen := 0.0
	lengths := map[blog.PostID]float64{}
	for _, pid := range c.PostIDs() {
		l := float64(textutil.WordCount(c.Posts[pid].Body))
		lengths[pid] = l
		if l > maxLen {
			maxLen = l
		}
	}
	out := make(map[blog.BloggerID]float64, len(c.Bloggers))
	for _, b := range c.BloggerIDs() {
		in := float64(len(c.InLinks(b)))
		outDeg := float64(len(c.OutLinks(b)))
		best := 0.0
		for _, pid := range c.PostsBy(b) {
			p := c.Posts[pid]
			lw := 0.0
			if maxLen > 0 {
				lw = lengths[pid] / maxLen
			}
			flow := wCom*float64(len(p.Comments)) + wIn*in - wOut*outDeg
			score := lw * math.Max(flow, 0)
			if score > best {
				best = score
			}
		}
		out[b] = best
	}
	return out, nil
}
