package lexicon

import (
	"strings"
	"testing"
)

func TestDomainsCanonical(t *testing.T) {
	d := Domains()
	if len(d) != 10 {
		t.Fatalf("len(Domains) = %d, want 10", len(d))
	}
	if d[0] != Travel || d[9] != Politics {
		t.Fatalf("domain order wrong: %v", d)
	}
	seen := map[string]bool{}
	for _, name := range d {
		if seen[name] {
			t.Fatalf("duplicate domain %q", name)
		}
		seen[name] = true
	}
}

func TestVocabularyCoverage(t *testing.T) {
	for _, d := range Domains() {
		v := Vocabulary(d)
		if len(v) < 30 {
			t.Errorf("Vocabulary(%s) has %d words, want >= 30", d, len(v))
		}
		for _, w := range v {
			if w != strings.ToLower(w) {
				t.Errorf("vocabulary word %q in %s is not lowercase", w, d)
			}
		}
	}
	if Vocabulary("Astrology") != nil {
		t.Fatal("unknown domain must return nil vocabulary")
	}
}

func TestVocabulariesMostlyDisjoint(t *testing.T) {
	// Domain vocabularies may share a handful of words (e.g. "museum" in
	// Travel and Art) but must be overwhelmingly distinct or the
	// classifier has no signal.
	counts := map[string]int{}
	for _, d := range Domains() {
		for _, w := range Vocabulary(d) {
			counts[w]++
		}
	}
	shared := 0
	for _, c := range counts {
		if c > 1 {
			shared++
		}
	}
	if shared > 5 {
		t.Fatalf("%d words shared between domains, want <= 5", shared)
	}
}

func TestSentimentSeedsFromPaper(t *testing.T) {
	pos := map[string]bool{}
	for _, w := range PositiveWords() {
		pos[w] = true
	}
	// The paper names these three examples explicitly.
	for _, w := range []string{"agree", "support", "conform"} {
		if !pos[w] {
			t.Errorf("paper-mandated positive word %q missing", w)
		}
	}
	neg := map[string]bool{}
	for _, w := range NegativeWords() {
		neg[w] = true
	}
	for _, w := range []string{"disagree", "oppose", "wrong"} {
		if !neg[w] {
			t.Errorf("expected negative word %q missing", w)
		}
	}
	for w := range pos {
		if neg[w] {
			t.Errorf("word %q appears in both sentiment lexicons", w)
		}
	}
}

func TestCopyIndicatorsLowercase(t *testing.T) {
	ind := CopyIndicators()
	if len(ind) < 10 {
		t.Fatalf("want >= 10 copy indicators, got %d", len(ind))
	}
	for _, p := range ind {
		if p != strings.ToLower(p) {
			t.Errorf("copy indicator %q must be lowercase", p)
		}
	}
}
