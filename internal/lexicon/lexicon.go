// Package lexicon holds the word lists MASS depends on: the positive and
// negative sentiment lexicons used by the comment analyzer, the
// copy-indicator phrases used by the novelty detector, and topical
// vocabularies for the ten predefined interest domains from the paper's
// evaluation (Travel, Computer, Communication, Education, Economics,
// Military, Sports, Medicine, Art, Politics).
//
// The sentiment word seeds follow the paper exactly: positive comments
// "contain positive words such as 'agree', 'support', 'conform'"; the rest
// of each list is standard opinion vocabulary so synthetic comments have
// realistic variety.
package lexicon

import "strings"

// Domain names as predefined in the paper's evaluation section, in the
// paper's order.
const (
	Travel        = "Travel"
	Computer      = "Computer"
	Communication = "Communication"
	Education     = "Education"
	Economics     = "Economics"
	Military      = "Military"
	Sports        = "Sports"
	Medicine      = "Medicine"
	Art           = "Art"
	Politics      = "Politics"
)

// Domains lists all ten predefined interest domains in canonical order.
func Domains() []string {
	return []string{Travel, Computer, Communication, Education, Economics,
		Military, Sports, Medicine, Art, Politics}
}

// PositiveWords returns the positive-sentiment lexicon (stemmed-form
// agnostic: the sentiment analyzer matches raw lowercase tokens).
func PositiveWords() []string {
	return splitWords(positiveRaw)
}

// NegativeWords returns the negative-sentiment lexicon.
func NegativeWords() []string {
	return splitWords(negativeRaw)
}

// CopyIndicators returns the phrases whose presence marks a post as
// reproduced content ("a carbon copy from others", paper §II). Matching is
// case-insensitive substring matching on the raw post text.
func CopyIndicators() []string {
	return []string{
		"reposted from", "repost from", "copied from", "copy from",
		"forwarded from", "forward from", "via email forward",
		"originally posted", "originally published", "original source",
		"source:", "credit to", "all rights belong",
		"zt", "zhuan tie", "reprinted", "reprint from", "excerpted from",
		"quoted in full", "full text below", "courtesy of",
	}
}

// Vocabulary returns the topical word list for a domain, or nil for an
// unknown domain. These vocabularies drive both the synthetic text
// generator and (indirectly) the classifier's learned features; they are
// intentionally disjoint enough that naive Bayes separates them well, with
// a shared pool of neutral filler supplied by the generator.
func Vocabulary(domain string) []string {
	raw, ok := vocabularies[domain]
	if !ok {
		return nil
	}
	return splitWords(raw)
}

func splitWords(raw string) []string {
	return strings.Fields(raw)
}

var vocabularies = map[string]string{
	Travel: `travel trip journey flight hotel resort beach island passport
		visa luggage itinerary tourist tourism vacation holiday cruise
		backpack hostel landmark museum sightseeing destination airline
		airport booking guide map adventure safari hiking camping
		souvenir customs jetlag roadtrip scenery coastline`,
	Computer: `computer software hardware programming code compiler
		algorithm database server network linux windows keyboard processor
		memory disk laptop debugging java python developer opensource
		kernel browser internet website framework api binary encryption
		bandwidth motherboard graphics cache thread runtime`,
	Communication: `communication phone mobile telecom wireless signal
		antenna broadband cellular messaging chat email voicemail
		conference broadcast satellite frequency spectrum carrier roaming
		handset smartphone texting videocall modem router protocol
		transmission receiver dialtone operator subscriber`,
	Education: `education school university college student teacher
		professor classroom curriculum homework exam scholarship degree
		diploma lecture seminar tuition campus kindergarten literacy
		textbook grading syllabus semester thesis dissertation mentor
		tutoring enrollment graduation academics pedagogy`,
	Economics: `economics economy market stock finance investment
		inflation recession depression bank interest mortgage currency
		trade deficit surplus gdp unemployment tax fiscal monetary
		portfolio dividend equity bond commodity exchange tariff
		stimulus bailout liquidity capital entrepreneur`,
	Military: `military army navy airforce soldier weapon missile tank
		battalion regiment deployment combat strategy defense artillery
		infantry submarine radar warfare treaty ceasefire reconnaissance
		barracks veteran general admiral brigade munitions armor
		logistics convoy fortification garrison`,
	Sports: `sports basketball football soccer baseball tennis golf
		marathon olympics championship tournament athlete coach stadium
		league playoff score goal touchdown dunk sprint swimming cycling
		fitness training workout referee medal record season draft
		jersey sneaker dribble volley`,
	Medicine: `medicine doctor hospital patient nurse surgery diagnosis
		treatment therapy vaccine prescription symptom disease clinic
		pharmacy antibiotic cardiology oncology pediatrics anatomy
		immunology infection recovery wellness checkup dosage chronic
		epidemic physician surgeon stethoscope ward`,
	Art: `art painting sculpture gallery artist canvas exhibition
		portrait landscape watercolor brush palette museum curator
		abstract impressionism renaissance photography sketch drawing
		ceramics installation aesthetic composition masterpiece studio
		fresco mural etching collage pigment easel`,
	Politics: `politics government election senate congress president
		campaign policy legislation democracy republican democrat vote
		ballot candidate parliament minister diplomacy constitution
		referendum lobbying governance coalition veto amendment
		bureaucracy statecraft incumbent caucus primary mandate`,
}

var positiveRaw = `agree support conform great excellent wonderful amazing
	awesome fantastic brilliant insightful helpful inspiring love
	like enjoy impressive superb outstanding perfect thanks thank
	appreciate valuable informative useful convincing right correct
	best favorite recommend endorse applaud admire delightful`

var negativeRaw = `disagree oppose wrong terrible awful horrible bad
	misleading useless boring nonsense stupid hate dislike poor
	disappointing flawed incorrect false biased overrated weak
	waste doubt doubtful refute reject object worst pathetic
	ridiculous shallow unconvincing inaccurate`
