package sentiment_test

import (
	"fmt"

	"mass/internal/sentiment"
)

func ExampleAnalyzer_Score() {
	a := sentiment.NewAnalyzer()
	for _, comment := range []string{
		"I agree, great post",
		"this is wrong and misleading",
		"see you at the meeting",
	} {
		fmt.Println(a.Score(comment))
	}
	// Output:
	// positive
	// negative
	// neutral
}
