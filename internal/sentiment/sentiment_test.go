package sentiment

import (
	"testing"
	"testing/quick"
)

func TestPaperSeedWords(t *testing.T) {
	a := NewAnalyzer()
	for _, text := range []string{
		"I agree with this",
		"I support your view",
		"these results conform to my experience",
	} {
		if got := a.Score(text); got != Positive {
			t.Errorf("Score(%q) = %v, want positive", text, got)
		}
	}
}

func TestNegativeDetection(t *testing.T) {
	a := NewAnalyzer()
	for _, text := range []string{
		"I disagree completely",
		"this is wrong and misleading",
		"terrible post, waste of time",
	} {
		if got := a.Score(text); got != Negative {
			t.Errorf("Score(%q) = %v, want negative", text, got)
		}
	}
}

func TestNeutralDefault(t *testing.T) {
	a := NewAnalyzer()
	for _, text := range []string{
		"",
		"interesting times we live in",
		"the meeting is on tuesday",
	} {
		if got := a.Score(text); got != Neutral {
			t.Errorf("Score(%q) = %v, want neutral", text, got)
		}
	}
}

func TestTieIsNeutral(t *testing.T) {
	a := NewAnalyzer()
	if got := a.Score("I agree but this is wrong"); got != Neutral {
		t.Fatalf("tie = %v, want neutral", got)
	}
}

func TestNegationFlips(t *testing.T) {
	a := NewAnalyzer()
	if got := a.Score("this is not great"); got != Negative {
		t.Fatalf("'not great' = %v, want negative", got)
	}
	if got := a.Score("this is not wrong"); got != Positive {
		t.Fatalf("'not wrong' = %v, want positive", got)
	}
	if got := a.Score("I don't agree"); got != Negative {
		t.Fatalf("\"don't agree\" = %v, want negative", got)
	}
}

func TestNegatorOnlyAffectsNextToken(t *testing.T) {
	a := NewAnalyzer()
	// "not" negates "really" (no sentiment), so "great" stays positive.
	if got := a.Score("not really great"); got != Positive {
		t.Fatalf("'not really great' = %v, want positive", got)
	}
}

func TestCaseInsensitive(t *testing.T) {
	a := NewAnalyzer()
	if got := a.Score("I AGREE!"); got != Positive {
		t.Fatalf("uppercase = %v, want positive", got)
	}
}

func TestCounts(t *testing.T) {
	a := NewAnalyzer()
	pos, neg := a.Counts("great great wrong")
	if pos != 2 || neg != 1 {
		t.Fatalf("Counts = (%d, %d), want (2, 1)", pos, neg)
	}
	pos, neg = a.Counts("")
	if pos != 0 || neg != 0 {
		t.Fatalf("empty Counts = (%d, %d)", pos, neg)
	}
}

func TestPolarityString(t *testing.T) {
	if Positive.String() != "positive" || Negative.String() != "negative" || Neutral.String() != "neutral" {
		t.Fatal("Polarity.String wrong")
	}
}

// Property: Score agrees with the sign of Counts.
func TestScoreCountsConsistency(t *testing.T) {
	a := NewAnalyzer()
	f := func(text string) bool {
		pos, neg := a.Counts(text)
		got := a.Score(text)
		switch {
		case pos > neg:
			return got == Positive
		case neg > pos:
			return got == Negative
		default:
			return got == Neutral
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
