// Package sentiment implements the Comment Analyzer's attitude detection.
// Per the paper §II, a comment's sentiment factor SF is 1.0 when positive
// (it "contains positive words such as 'agree', 'support', 'conform'"),
// 0.1 when negative, and 0.5 otherwise (neutral).
//
// The classifier is lexicon-based with simple negation handling ("not
// great" counts as negative evidence, not positive). The SF values
// themselves are configurable in the influence model; this package only
// decides the polarity.
package sentiment

import (
	"mass/internal/lexicon"
	"mass/internal/textutil"
)

// Polarity is a comment's detected attitude.
type Polarity int

// The three attitudes the paper distinguishes.
const (
	Neutral Polarity = iota
	Positive
	Negative
)

// String renders the polarity name.
func (p Polarity) String() string {
	switch p {
	case Positive:
		return "positive"
	case Negative:
		return "negative"
	default:
		return "neutral"
	}
}

// Analyzer detects comment polarity against the sentiment lexicons.
// The zero value is not usable; call NewAnalyzer.
type Analyzer struct {
	positive map[string]struct{}
	negative map[string]struct{}
}

// NewAnalyzer builds an analyzer from the standard lexicons.
func NewAnalyzer() *Analyzer {
	a := &Analyzer{
		positive: map[string]struct{}{},
		negative: map[string]struct{}{},
	}
	for _, w := range lexicon.PositiveWords() {
		a.positive[w] = struct{}{}
	}
	for _, w := range lexicon.NegativeWords() {
		a.negative[w] = struct{}{}
	}
	return a
}

// negators flip the polarity of the word that immediately follows.
var negators = map[string]struct{}{
	"not": {}, "no": {}, "never": {}, "hardly": {}, "dont": {},
	"don't": {}, "didnt": {}, "didn't": {}, "cant": {}, "can't": {},
	"wont": {}, "won't": {}, "isnt": {}, "isn't": {}, "wasnt": {}, "wasn't": {},
}

// Score returns the polarity of text by counting lexicon hits, with
// single-token negation flipping. Ties and zero hits are Neutral.
func (a *Analyzer) Score(text string) Polarity {
	toks := textutil.Tokenize(text)
	pos, neg := 0, 0
	negated := false
	for _, tok := range toks {
		if _, isNeg := negators[tok]; isNeg {
			negated = true
			continue
		}
		_, isPos := a.positive[tok]
		_, isNegWord := a.negative[tok]
		switch {
		case isPos && negated:
			neg++
		case isPos:
			pos++
		case isNegWord && negated:
			pos++
		case isNegWord:
			neg++
		}
		negated = false
	}
	switch {
	case pos > neg:
		return Positive
	case neg > pos:
		return Negative
	default:
		return Neutral
	}
}

// Counts returns the raw positive/negative hit counts (after negation
// flipping), useful for diagnostics and tests.
func (a *Analyzer) Counts(text string) (pos, neg int) {
	toks := textutil.Tokenize(text)
	negated := false
	for _, tok := range toks {
		if _, isNeg := negators[tok]; isNeg {
			negated = true
			continue
		}
		_, isPos := a.positive[tok]
		_, isNegWord := a.negative[tok]
		switch {
		case isPos && negated:
			neg++
		case isPos:
			pos++
		case isNegWord && negated:
			pos++
		case isNegWord:
			neg++
		}
		negated = false
	}
	return pos, neg
}
