package blog

import "time"

// Figure1Corpus builds the exact sample influence graph from the paper's
// Figure 1: nine bloggers (Amery, Bob, Cary, Dolly, Eddie, Helen, Jane,
// Leo, Michael) and four posts. Amery writes post1 (CS, commented on by
// Bob and Cary) and post2 (Econ, commented on by Cary); Helen writes
// post3 (CS) and Michael writes post4 (CS) to populate the rest of the
// figure's network. The remaining bloggers comment and link to give the
// authority graph shape shown in the figure.
//
// This corpus is the canonical hand-checkable fixture: unit tests verify
// the analyzer's scores on it against manual computation, and
// examples/quickstart walks through it.
func Figure1Corpus() *Corpus {
	c := NewCorpus()
	t0 := time.Date(2009, 6, 1, 12, 0, 0, 0, time.UTC)
	names := []string{"Amery", "Bob", "Cary", "Dolly", "Eddie", "Helen", "Jane", "Leo", "Michael"}
	for _, n := range names {
		must(c.AddBlogger(&Blogger{ID: BloggerID(n), Name: n}))
	}

	must(c.AddPost(&Post{
		ID: "post1", Author: "Amery", Title: "Programming skills",
		Body: "Some thoughts on programming skills in computer science: " +
			"write clean code, test the algorithm, profile the software, " +
			"and keep the compiler happy. Debugging a database server " +
			"teaches more than any textbook.",
		Posted:     t0,
		TrueDomain: "Computer",
		Comments: []Comment{
			{Commenter: "Bob", Text: "I agree, great post on programming.", Posted: t0.Add(time.Hour)},
			{Commenter: "Cary", Text: "Excellent insight, I support this view of software.", Posted: t0.Add(2 * time.Hour)},
		},
	}))
	must(c.AddPost(&Post{
		ID: "post2", Author: "Amery", Title: "Economic depression",
		Body: "The recent economic depression and possible trends in the " +
			"next couple of months: the market is weak, the bank interest " +
			"rate falls, inflation cools, and the stock exchange stays " +
			"volatile while investment hesitates.",
		Posted:     t0.Add(24 * time.Hour),
		TrueDomain: "Economics",
		Comments: []Comment{
			{Commenter: "Cary", Text: "I disagree, this reading of the economy is wrong.", Posted: t0.Add(26 * time.Hour)},
		},
	}))
	must(c.AddPost(&Post{
		ID: "post3", Author: "Helen", Title: "Learning to code",
		Body: "A short note about my first computer program: the code " +
			"compiled, the algorithm ran, and the laptop survived.",
		Posted:     t0.Add(48 * time.Hour),
		TrueDomain: "Computer",
		Comments: []Comment{
			{Commenter: "Jane", Text: "Nice work, I like it.", Posted: t0.Add(49 * time.Hour)},
			{Commenter: "Eddie", Text: "Helpful for beginners, thanks.", Posted: t0.Add(50 * time.Hour)},
		},
	}))
	must(c.AddPost(&Post{
		ID: "post4", Author: "Michael", Title: "Kernel hacking",
		Body: "Notes on kernel hacking with a debugger: the processor " +
			"stalls, the memory leaks, and the thread scheduler wins.",
		Posted:     t0.Add(72 * time.Hour),
		TrueDomain: "Computer",
		Comments: []Comment{
			{Commenter: "Leo", Text: "Impressive, I support this.", Posted: t0.Add(73 * time.Hour)},
			{Commenter: "Dolly", Text: "Boring and useless, I disagree.", Posted: t0.Add(74 * time.Hour)},
		},
	}))

	// Hyperlinks: readers who find a blog interesting link to it. Amery is
	// the figure's hub; Helen and Michael get some authority too.
	links := [][2]BloggerID{
		{"Bob", "Amery"}, {"Cary", "Amery"}, {"Dolly", "Amery"},
		{"Eddie", "Helen"}, {"Jane", "Helen"},
		{"Leo", "Michael"}, {"Helen", "Amery"}, {"Michael", "Amery"},
	}
	for _, l := range links {
		must(c.AddLink(l[0], l[1]))
	}
	return c
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
