package blog

import (
	"fmt"
	"sort"
)

// Stats summarizes a corpus: sizes, degree distributions and comment
// activity. Used by the CLI tools and the experiment harness to report
// workload shape alongside results.
type Stats struct {
	Bloggers        int
	Posts           int
	Comments        int
	Links           int
	MaxPostsPerUser int
	MaxCommentsMade int
	MaxInLinks      int
	AvgPostLenWords float64
}

// ComputeStats scans the corpus once and returns its summary. wordCount is
// the token counter to use for post lengths (injected to keep this package
// free of text-processing dependencies).
func ComputeStats(c *Corpus, wordCount func(string) int) Stats {
	s := Stats{
		Bloggers: len(c.Bloggers),
		Posts:    len(c.Posts),
		Links:    len(c.Links),
	}
	totalLen := 0
	for _, p := range c.Posts {
		s.Comments += len(p.Comments)
		totalLen += wordCount(p.Body)
	}
	for b := range c.Bloggers {
		if n := len(c.PostsBy(b)); n > s.MaxPostsPerUser {
			s.MaxPostsPerUser = n
		}
		if n := c.TotalComments(b); n > s.MaxCommentsMade {
			s.MaxCommentsMade = n
		}
		if n := len(c.InLinks(b)); n > s.MaxInLinks {
			s.MaxInLinks = n
		}
	}
	if s.Posts > 0 {
		s.AvgPostLenWords = float64(totalLen) / float64(s.Posts)
	}
	return s
}

// String renders the stats as a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("bloggers=%d posts=%d comments=%d links=%d maxPosts=%d maxComments=%d maxInLinks=%d avgPostLen=%.1f",
		s.Bloggers, s.Posts, s.Comments, s.Links,
		s.MaxPostsPerUser, s.MaxCommentsMade, s.MaxInLinks, s.AvgPostLenWords)
}

// CommentEdge is an aggregated post-reply edge: Commenter left Count
// comments on posts by Author. This is exactly the edge the demo UI draws
// ("the number on the line records the total number comments of one blogger
// on the other blogger's posts", Fig 4).
type CommentEdge struct {
	Commenter BloggerID
	Author    BloggerID
	Count     int
}

// CommentEdges aggregates all comments into blogger-to-blogger edges,
// sorted by (Commenter, Author) for determinism. Self-comments are kept:
// they exist in real blogs, and downstream consumers filter if needed.
func CommentEdges(c *Corpus) []CommentEdge {
	counts := map[[2]BloggerID]int{}
	for _, p := range c.Posts {
		for _, cm := range p.Comments {
			counts[[2]BloggerID{cm.Commenter, p.Author}]++
		}
	}
	edges := make([]CommentEdge, 0, len(counts))
	for k, n := range counts {
		edges = append(edges, CommentEdge{Commenter: k[0], Author: k[1], Count: n})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Commenter != edges[j].Commenter {
			return edges[i].Commenter < edges[j].Commenter
		}
		return edges[i].Author < edges[j].Author
	})
	return edges
}

// Neighborhood returns the set of bloggers within the given radius of seed
// in the undirected post-reply ∪ friendship ∪ hyperlink network, including
// seed itself. This implements the demo's "radius of network where the
// crawling is performed" option.
func Neighborhood(c *Corpus, seed BloggerID, radius int) map[BloggerID]int {
	dist := map[BloggerID]int{}
	if _, ok := c.Bloggers[seed]; !ok {
		return dist
	}
	adj := map[BloggerID]map[BloggerID]struct{}{}
	addEdge := func(a, b BloggerID) {
		if adj[a] == nil {
			adj[a] = map[BloggerID]struct{}{}
		}
		if adj[b] == nil {
			adj[b] = map[BloggerID]struct{}{}
		}
		adj[a][b] = struct{}{}
		adj[b][a] = struct{}{}
	}
	for _, e := range CommentEdges(c) {
		if e.Commenter != e.Author {
			addEdge(e.Commenter, e.Author)
		}
	}
	for _, l := range c.Links {
		addEdge(l.From, l.To)
	}
	for id, b := range c.Bloggers {
		for _, f := range b.Friends {
			addEdge(id, f)
		}
	}
	dist[seed] = 0
	frontier := []BloggerID{seed}
	for d := 1; d <= radius && len(frontier) > 0; d++ {
		var next []BloggerID
		for _, u := range frontier {
			for v := range adj[u] {
				if _, seen := dist[v]; !seen {
					dist[v] = d
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return dist
}

// Subcorpus extracts the induced sub-corpus on the given blogger set:
// posts by members (comments from non-members dropped), links and
// friendships with both endpoints inside. Used to analyze a friend
// network rather than the whole blogosphere (demo §IV).
func Subcorpus(c *Corpus, members map[BloggerID]int) *Corpus {
	sub := NewCorpus()
	for id := range members {
		if b, ok := c.Bloggers[id]; ok {
			nb := *b
			nb.Friends = nil
			for _, f := range b.Friends {
				if _, in := members[f]; in {
					nb.Friends = append(nb.Friends, f)
				}
			}
			sub.Bloggers[nb.ID] = &nb
		}
	}
	for _, pid := range c.PostIDs() {
		p := c.Posts[pid]
		if _, in := members[p.Author]; !in {
			continue
		}
		np := *p
		np.Comments = nil
		for _, cm := range p.Comments {
			if _, in := members[cm.Commenter]; in {
				np.Comments = append(np.Comments, cm)
			}
		}
		sub.Posts[np.ID] = &np
	}
	for _, l := range c.Links {
		_, fromIn := members[l.From]
		_, toIn := members[l.To]
		if fromIn && toIn {
			sub.Links = append(sub.Links, l)
		}
	}
	sub.Reindex()
	return sub
}
