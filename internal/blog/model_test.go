package blog

import (
	"strings"
	"testing"
	"time"
)

func twoBloggerCorpus(t *testing.T) *Corpus {
	t.Helper()
	c := NewCorpus()
	if err := c.AddBlogger(&Blogger{ID: "a", Name: "A"}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddBlogger(&Blogger{ID: "b", Name: "B"}); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestAddBloggerValidation(t *testing.T) {
	c := NewCorpus()
	if err := c.AddBlogger(&Blogger{ID: ""}); err == nil {
		t.Fatal("empty ID must be rejected")
	}
	if err := c.AddBlogger(nil); err == nil {
		t.Fatal("nil blogger must be rejected")
	}
	if err := c.AddBlogger(&Blogger{ID: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddBlogger(&Blogger{ID: "a"}); err == nil {
		t.Fatal("duplicate ID must be rejected")
	}
}

func TestAddPostIndexes(t *testing.T) {
	c := twoBloggerCorpus(t)
	p := &Post{ID: "p1", Author: "a", Body: "hello world",
		Comments: []Comment{{Commenter: "b", Text: "nice"}, {Commenter: "b", Text: "again"}}}
	if err := c.AddPost(p); err != nil {
		t.Fatal(err)
	}
	if got := c.PostsBy("a"); len(got) != 1 || got[0] != "p1" {
		t.Fatalf("PostsBy(a) = %v", got)
	}
	if got := c.TotalComments("b"); got != 2 {
		t.Fatalf("TotalComments(b) = %d, want 2", got)
	}
	if got := c.TotalComments("a"); got != 0 {
		t.Fatalf("TotalComments(a) = %d, want 0", got)
	}
}

func TestAddPostValidation(t *testing.T) {
	c := twoBloggerCorpus(t)
	if err := c.AddPost(&Post{ID: "", Author: "a"}); err == nil {
		t.Fatal("empty post ID must be rejected")
	}
	if err := c.AddPost(&Post{ID: "p", Author: "ghost"}); err == nil {
		t.Fatal("unknown author must be rejected")
	}
	if err := c.AddPost(&Post{ID: "p", Author: "a",
		Comments: []Comment{{Commenter: "ghost"}}}); err == nil {
		t.Fatal("unknown commenter must be rejected")
	}
	if err := c.AddPost(&Post{ID: "p", Author: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddPost(&Post{ID: "p", Author: "b"}); err == nil {
		t.Fatal("duplicate post ID must be rejected")
	}
}

func TestAddLink(t *testing.T) {
	c := twoBloggerCorpus(t)
	if err := c.AddLink("a", "a"); err == nil {
		t.Fatal("self-link must be rejected")
	}
	if err := c.AddLink("a", "ghost"); err == nil {
		t.Fatal("link to unknown blogger must be rejected")
	}
	if err := c.AddLink("ghost", "a"); err == nil {
		t.Fatal("link from unknown blogger must be rejected")
	}
	if err := c.AddLink("a", "b"); err != nil {
		t.Fatal(err)
	}
	if got := c.OutLinks("a"); len(got) != 1 || got[0] != "b" {
		t.Fatalf("OutLinks(a) = %v", got)
	}
	if got := c.InLinks("b"); len(got) != 1 || got[0] != "a" {
		t.Fatalf("InLinks(b) = %v", got)
	}
}

func TestReindexMatchesIncremental(t *testing.T) {
	c := twoBloggerCorpus(t)
	if err := c.AddPost(&Post{ID: "p1", Author: "a",
		Comments: []Comment{{Commenter: "b", Text: "x"}}}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddLink("a", "b"); err != nil {
		t.Fatal(err)
	}
	beforePosts := c.PostsBy("a")
	beforeTC := c.TotalComments("b")
	c.Reindex()
	if got := c.PostsBy("a"); len(got) != len(beforePosts) || got[0] != beforePosts[0] {
		t.Fatalf("Reindex changed PostsBy: %v vs %v", got, beforePosts)
	}
	if got := c.TotalComments("b"); got != beforeTC {
		t.Fatalf("Reindex changed TotalComments: %d vs %d", got, beforeTC)
	}
	if got := c.InLinks("b"); len(got) != 1 {
		t.Fatalf("Reindex lost links: %v", got)
	}
}

func TestSortedIDs(t *testing.T) {
	c := NewCorpus()
	for _, id := range []string{"zed", "alpha", "mid"} {
		if err := c.AddBlogger(&Blogger{ID: BloggerID(id)}); err != nil {
			t.Fatal(err)
		}
	}
	ids := c.BloggerIDs()
	if ids[0] != "alpha" || ids[2] != "zed" {
		t.Fatalf("BloggerIDs not sorted: %v", ids)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	c := Figure1Corpus()
	if err := c.Validate(); err != nil {
		t.Fatalf("Figure1Corpus must validate: %v", err)
	}
	// Corrupt: friend pointing nowhere.
	c.Bloggers["Amery"].Friends = []BloggerID{"nobody"}
	if err := c.Validate(); err == nil || !strings.Contains(err.Error(), "friend") {
		t.Fatalf("expected friend validation error, got %v", err)
	}
	c.Bloggers["Amery"].Friends = nil

	// Corrupt: dangling link.
	c.Links = append(c.Links, Link{From: "Amery", To: "nobody"})
	if err := c.Validate(); err == nil {
		t.Fatal("expected link validation error")
	}
	c.Links = c.Links[:len(c.Links)-1]

	// Corrupt: post with unknown author.
	c.Posts["bad"] = &Post{ID: "bad", Author: "nobody"}
	if err := c.Validate(); err == nil {
		t.Fatal("expected author validation error")
	}
	delete(c.Posts, "bad")

	// Corrupt: mismatched map key.
	c.Posts["post9"] = &Post{ID: "postX", Author: "Amery"}
	if err := c.Validate(); err == nil {
		t.Fatal("expected map-key mismatch error")
	}
}

func TestFigure1Shape(t *testing.T) {
	c := Figure1Corpus()
	if len(c.Bloggers) != 9 {
		t.Fatalf("Figure 1 has 9 bloggers, got %d", len(c.Bloggers))
	}
	if len(c.Posts) != 4 {
		t.Fatalf("Figure 1 has 4 posts, got %d", len(c.Posts))
	}
	// Amery has post1 (2 comments: Bob, Cary) and post2 (1 comment: Cary).
	ps := c.PostsBy("Amery")
	if len(ps) != 2 {
		t.Fatalf("Amery must have 2 posts, got %v", ps)
	}
	if got := c.TotalComments("Cary"); got != 2 {
		t.Fatalf("TC(Cary) = %d, want 2", got)
	}
	if got := c.TotalComments("Bob"); got != 1 {
		t.Fatalf("TC(Bob) = %d, want 1", got)
	}
	if got := len(c.InLinks("Amery")); got != 5 {
		t.Fatalf("Amery in-links = %d, want 5", got)
	}
	if c.Posts["post1"].TrueDomain != "Computer" || c.Posts["post2"].TrueDomain != "Economics" {
		t.Fatal("Figure 1 planted domains wrong")
	}
}

func TestCommentEdges(t *testing.T) {
	c := Figure1Corpus()
	edges := CommentEdges(c)
	var caryAmery *CommentEdge
	for i := range edges {
		if edges[i].Commenter == "Cary" && edges[i].Author == "Amery" {
			caryAmery = &edges[i]
		}
	}
	if caryAmery == nil || caryAmery.Count != 2 {
		t.Fatalf("Cary→Amery edge = %+v, want count 2", caryAmery)
	}
	// Determinism: sorted by (commenter, author).
	for i := 1; i < len(edges); i++ {
		a, b := edges[i-1], edges[i]
		if a.Commenter > b.Commenter || (a.Commenter == b.Commenter && a.Author >= b.Author) {
			t.Fatalf("edges not sorted at %d: %+v %+v", i, a, b)
		}
	}
}

func TestNeighborhoodRadius(t *testing.T) {
	c := Figure1Corpus()
	n0 := Neighborhood(c, "Amery", 0)
	if len(n0) != 1 || n0["Amery"] != 0 {
		t.Fatalf("radius 0 = %v", n0)
	}
	n1 := Neighborhood(c, "Amery", 1)
	// Direct: commenters Bob, Cary; linkers Bob, Cary, Dolly, Helen, Michael.
	for _, id := range []BloggerID{"Bob", "Cary", "Dolly", "Helen", "Michael"} {
		if n1[id] != 1 {
			t.Fatalf("expected %s at distance 1, got %v", id, n1)
		}
	}
	if _, in := n1["Jane"]; in {
		t.Fatal("Jane is 2 hops away, must not be in radius 1")
	}
	n2 := Neighborhood(c, "Amery", 2)
	if n2["Jane"] != 2 || n2["Eddie"] != 2 || n2["Leo"] != 2 {
		t.Fatalf("radius 2 = %v", n2)
	}
	if got := Neighborhood(c, "ghost", 3); len(got) != 0 {
		t.Fatalf("unknown seed must return empty, got %v", got)
	}
}

func TestSubcorpus(t *testing.T) {
	c := Figure1Corpus()
	members := Neighborhood(c, "Helen", 1) // Helen, Eddie, Jane, Amery
	sub := Subcorpus(c, members)
	if err := sub.Validate(); err != nil {
		t.Fatalf("subcorpus invalid: %v", err)
	}
	if _, ok := sub.Bloggers["Helen"]; !ok {
		t.Fatal("Helen missing from subcorpus")
	}
	if _, ok := sub.Bloggers["Leo"]; ok {
		t.Fatal("Leo must not be in Helen's radius-1 subcorpus")
	}
	// post3 by Helen survives with both comments (Jane, Eddie in members).
	p3, ok := sub.Posts["post3"]
	if !ok || len(p3.Comments) != 2 {
		t.Fatalf("post3 in subcorpus = %+v", p3)
	}
	// post1 by Amery survives, but only comments from members remain.
	if p1, ok := sub.Posts["post1"]; ok {
		for _, cm := range p1.Comments {
			if _, in := members[cm.Commenter]; !in {
				t.Fatalf("non-member comment leaked: %v", cm.Commenter)
			}
		}
	}
	// Links with one endpoint outside are dropped.
	for _, l := range sub.Links {
		if _, in := members[l.From]; !in {
			t.Fatalf("link from non-member %v", l)
		}
		if _, in := members[l.To]; !in {
			t.Fatalf("link to non-member %v", l)
		}
	}
}

func TestComputeStats(t *testing.T) {
	c := Figure1Corpus()
	wc := func(s string) int { return len(strings.Fields(s)) }
	st := ComputeStats(c, wc)
	if st.Bloggers != 9 || st.Posts != 4 || st.Comments != 7 || st.Links != 8 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MaxPostsPerUser != 2 {
		t.Fatalf("MaxPostsPerUser = %d, want 2 (Amery)", st.MaxPostsPerUser)
	}
	if st.MaxCommentsMade != 2 {
		t.Fatalf("MaxCommentsMade = %d, want 2 (Cary)", st.MaxCommentsMade)
	}
	if st.MaxInLinks != 5 {
		t.Fatalf("MaxInLinks = %d, want 5 (Amery)", st.MaxInLinks)
	}
	if st.AvgPostLenWords <= 0 {
		t.Fatal("AvgPostLenWords must be positive")
	}
	if !strings.Contains(st.String(), "bloggers=9") {
		t.Fatalf("Stats.String() = %q", st.String())
	}
}

func TestStatsEmptyCorpus(t *testing.T) {
	st := ComputeStats(NewCorpus(), func(string) int { return 0 })
	if st.Posts != 0 || st.AvgPostLenWords != 0 {
		t.Fatalf("empty stats = %+v", st)
	}
}

func TestCommentTimestampsPreserved(t *testing.T) {
	c := Figure1Corpus()
	p := c.Posts["post1"]
	if p.Comments[0].Posted.IsZero() || !p.Comments[1].Posted.After(p.Comments[0].Posted) {
		t.Fatal("comment timestamps must be set and ordered")
	}
	if p.Posted.Equal(time.Time{}) {
		t.Fatal("post timestamp must be set")
	}
}
