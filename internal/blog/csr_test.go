package blog

import (
	"fmt"
	"testing"
)

func linkedCorpus(t *testing.T) *Corpus {
	t.Helper()
	c := NewCorpus()
	for i := 0; i < 6; i++ {
		if err := c.AddBlogger(&Blogger{ID: BloggerID(fmt.Sprintf("b%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]string{{"b0", "b1"}, {"b1", "b2"}, {"b2", "b0"}, {"b3", "b0"}, {"b4", "b1"}} {
		if err := c.AddLink(BloggerID(e[0]), BloggerID(e[1])); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestLinkCSRMatchesAdjacency(t *testing.T) {
	c := linkedCorpus(t)
	// Duplicate links must collapse in the view, matching the solver's
	// historical AddEdge dedup semantics.
	c.Links = append(c.Links, Link{From: "b0", To: "b1"})
	csr := c.LinkCSR()
	if err := csr.Validate(); err != nil {
		t.Fatal(err)
	}
	ids := c.BloggerIDs()
	if csr.NumNodes() != len(ids) {
		t.Fatalf("csr has %d nodes, corpus %d bloggers", csr.NumNodes(), len(ids))
	}
	for i, id := range ids {
		if csr.IDs[i] != string(id) {
			t.Fatalf("csr node %d = %q, want sorted blogger %q", i, csr.IDs[i], id)
		}
		if got, want := csr.OutDegree(i), len(c.OutLinks(id)); got != want {
			t.Fatalf("out-degree of %s = %d, want %d", id, got, want)
		}
	}
	if csr.NumEdges() != 5 {
		t.Fatalf("csr has %d edges, want 5 deduplicated", csr.NumEdges())
	}
}

func TestLinkCSRCachedPerEpochAndSharedWithSnapshots(t *testing.T) {
	c := linkedCorpus(t)
	v1 := c.LinkCSR()
	if c.LinkCSR() != v1 {
		t.Fatal("unchanged epoch must return the cached CSR")
	}
	snap := c.Snapshot()
	if snap.LinkCSR() != v1 {
		t.Fatal("a snapshot at the same epoch must share the built CSR")
	}
	// A link mutation bumps the epoch: the live corpus rebuilds, the old
	// snapshot keeps serving the view it was frozen with.
	if err := c.AddLink("b5", "b3"); err != nil {
		t.Fatal(err)
	}
	v2 := c.LinkCSR()
	if v2 == v1 {
		t.Fatal("link-epoch bump must invalidate the cached CSR")
	}
	bi, _ := v2.Index("b5")
	if v2.OutDegree(bi) != 1 {
		t.Fatal("rebuilt CSR is missing the new edge")
	}
	if snap.LinkCSR() != v1 {
		t.Fatal("frozen snapshot must keep its epoch's CSR")
	}
	// A post does not touch the link graph; the view survives.
	if err := c.AddPost(&Post{ID: "p1", Author: "b0", Body: "hello"}); err != nil {
		t.Fatal(err)
	}
	if c.LinkCSR() != v2 {
		t.Fatal("post mutation must not invalidate the link CSR")
	}
	// Reindex advances the epoch by contract.
	c.Reindex()
	if c.LinkCSR() == v2 {
		t.Fatal("Reindex must invalidate the link CSR")
	}
}
