package blog

import "fmt"

// FromParts assembles a corpus from deserialized entities: the inverse of
// walking Bloggers/Posts/Links for serialization. The derived indexes are
// rebuilt and referential integrity is checked, so a successful return is a
// fully valid corpus; any inconsistency (duplicate or mismatched IDs,
// dangling references) is an error rather than a latent panic later. Links
// keep their given order — serializers that preserve it get back a corpus
// whose Links slice matches the original element for element.
func FromParts(bloggers []*Blogger, posts []*Post, links []Link) (*Corpus, error) {
	c := NewCorpus()
	for _, b := range bloggers {
		if b == nil || b.ID == "" {
			return nil, fmt.Errorf("blog: restore: blogger with empty ID")
		}
		if _, dup := c.Bloggers[b.ID]; dup {
			return nil, fmt.Errorf("blog: restore: duplicate blogger %q", b.ID)
		}
		c.Bloggers[b.ID] = b
	}
	for _, p := range posts {
		if p == nil || p.ID == "" {
			return nil, fmt.Errorf("blog: restore: post with empty ID")
		}
		if _, dup := c.Posts[p.ID]; dup {
			return nil, fmt.Errorf("blog: restore: duplicate post %q", p.ID)
		}
		c.Posts[p.ID] = p
	}
	c.Links = append(c.Links, links...)
	c.Reindex()
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("blog: restore: %w", err)
	}
	return c, nil
}
