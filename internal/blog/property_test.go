package blog

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// arbCorpus builds a random but structurally valid corpus from a seed.
func arbCorpus(seed int64) *Corpus {
	rng := rand.New(rand.NewSource(seed))
	c := NewCorpus()
	n := rng.Intn(10) + 2
	ids := make([]BloggerID, n)
	for i := range ids {
		ids[i] = BloggerID(fmt.Sprintf("u%02d", i))
		b := &Blogger{ID: ids[i]}
		// Friends wired later so all targets exist.
		if err := c.AddBlogger(b); err != nil {
			panic(err)
		}
	}
	for _, id := range ids {
		for f := 0; f < rng.Intn(3); f++ {
			fr := ids[rng.Intn(n)]
			if fr != id {
				c.Bloggers[id].Friends = append(c.Bloggers[id].Friends, fr)
			}
		}
	}
	for p := 0; p < rng.Intn(15); p++ {
		post := &Post{
			ID:     PostID(fmt.Sprintf("p%03d", p)),
			Author: ids[rng.Intn(n)],
			Body:   fmt.Sprintf("body %d with a few words", p),
		}
		for cm := 0; cm < rng.Intn(4); cm++ {
			post.Comments = append(post.Comments, Comment{
				Commenter: ids[rng.Intn(n)],
				Text:      "a comment",
			})
		}
		if err := c.AddPost(post); err != nil {
			panic(err)
		}
	}
	for l := 0; l < rng.Intn(2*n); l++ {
		from, to := ids[rng.Intn(n)], ids[rng.Intn(n)]
		if from == to {
			continue
		}
		dup := false
		for _, t := range c.OutLinks(from) {
			if t == to {
				dup = true
			}
		}
		if !dup {
			if err := c.AddLink(from, to); err != nil {
				panic(err)
			}
		}
	}
	return c
}

// Property: every generated corpus validates, and Reindex is idempotent —
// indexes after Reindex match the incrementally-maintained ones.
func TestCorpusReindexIdempotentProperty(t *testing.T) {
	f := func(seed int64) bool {
		c := arbCorpus(seed)
		if c.Validate() != nil {
			return false
		}
		type snapshot struct {
			posts map[BloggerID]int
			tc    map[BloggerID]int
			in    map[BloggerID]int
		}
		take := func() snapshot {
			s := snapshot{map[BloggerID]int{}, map[BloggerID]int{}, map[BloggerID]int{}}
			for _, id := range c.BloggerIDs() {
				s.posts[id] = len(c.PostsBy(id))
				s.tc[id] = c.TotalComments(id)
				s.in[id] = len(c.InLinks(id))
			}
			return s
		}
		before := take()
		c.Reindex()
		after := take()
		for _, id := range c.BloggerIDs() {
			if before.posts[id] != after.posts[id] ||
				before.tc[id] != after.tc[id] ||
				before.in[id] != after.in[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: a Subcorpus over any neighborhood validates and is closed —
// every referenced blogger is a member.
func TestSubcorpusClosureProperty(t *testing.T) {
	f := func(seed int64, radius8 uint8) bool {
		c := arbCorpus(seed)
		ids := c.BloggerIDs()
		seedB := ids[0]
		radius := int(radius8 % 4)
		members := Neighborhood(c, seedB, radius)
		sub := Subcorpus(c, members)
		if sub.Validate() != nil {
			return false
		}
		for id := range sub.Bloggers {
			if _, in := members[id]; !in {
				return false
			}
		}
		for _, p := range sub.Posts {
			if _, in := members[p.Author]; !in {
				return false
			}
			for _, cm := range p.Comments {
				if _, in := members[cm.Commenter]; !in {
					return false
				}
			}
		}
		// The subcorpus never contains more posts than the original.
		return len(sub.Posts) <= len(c.Posts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
