package blog

import "fmt"

// Copy-on-write corpus snapshotting.
//
// A live ingestion engine mutates one corpus while query traffic reads a
// frozen view of it. Snapshot produces that view cheaply: every map, index
// and slice is copied so the two corpora are structurally independent, but
// the Blogger and Post structs themselves are shared. The contract that
// makes sharing safe is copy-on-write on the mutable side: after taking a
// snapshot, the owner must never modify a shared entity in place — it
// replaces the map entry with an edited clone (AddComment and UpsertBlogger
// below do exactly that). Readers of the snapshot therefore never observe a
// torn or changing entity.

// Snapshot returns an independent read-only view of the corpus. The
// returned corpus owns fresh maps, index maps and slices; only the *Blogger
// and *Post structs are shared with the receiver. Continue mutating the
// receiver exclusively through the COW helpers (AddBlogger, AddPost,
// AddComment, AddLink, UpsertBlogger) and the snapshot stays immutable.
func (c *Corpus) Snapshot() *Corpus {
	s := &Corpus{
		Bloggers:      make(map[BloggerID]*Blogger, len(c.Bloggers)),
		Posts:         make(map[PostID]*Post, len(c.Posts)),
		Links:         append(make([]Link, 0, len(c.Links)), c.Links...),
		postsByAuthor: make(map[BloggerID][]PostID, len(c.postsByAuthor)),
		totalComments: make(map[BloggerID]int, len(c.totalComments)),
		outLinks:      make(map[BloggerID][]BloggerID, len(c.outLinks)),
		inLinks:       make(map[BloggerID][]BloggerID, len(c.inLinks)),
		linkEpoch:     c.linkEpoch,
		linkRebuild:   c.linkRebuild,
	}
	for id, b := range c.Bloggers {
		s.Bloggers[id] = b
	}
	for id, p := range c.Posts {
		s.Posts[id] = p
	}
	for id, posts := range c.postsByAuthor {
		s.postsByAuthor[id] = append(make([]PostID, 0, len(posts)), posts...)
	}
	for id, n := range c.totalComments {
		s.totalComments[id] = n
	}
	for id, out := range c.outLinks {
		s.outLinks[id] = append(make([]BloggerID, 0, len(out)), out...)
	}
	for id, in := range c.inLinks {
		s.inLinks[id] = append(make([]BloggerID, 0, len(in)), in...)
	}
	// The snapshot has the same link epoch, so an already-built link view
	// stays valid for it (LinkView revalidates by epoch). Views are
	// immutable once published, so sharing the pointer is safe.
	s.linkView.Store(c.linkView.Load())
	return s
}

// AddComment appends a comment to an existing post, copy-on-write: the post
// struct is cloned and the map entry replaced, so snapshots sharing the old
// struct are unaffected. The commenter must already exist.
func (c *Corpus) AddComment(pid PostID, cm Comment) error {
	p, ok := c.Posts[pid]
	if !ok {
		return fmt.Errorf("blog: comment on unknown post %q", pid)
	}
	if _, ok := c.Bloggers[cm.Commenter]; !ok {
		return fmt.Errorf("blog: comment on %q by unknown commenter %q", pid, cm.Commenter)
	}
	clone := *p
	clone.Comments = append(append(make([]Comment, 0, len(p.Comments)+1), p.Comments...), cm)
	c.Posts[pid] = &clone
	c.totalComments[cm.Commenter]++
	return nil
}

// AddLinkDedup records a hyperlink unless the identical edge already
// exists — crawls report most edges from both endpoints, and a live feed
// may re-deliver them.
func (c *Corpus) AddLinkDedup(from, to BloggerID) (added bool, err error) {
	for _, existing := range c.outLinks[from] {
		if existing == to {
			return false, nil
		}
	}
	if err := c.AddLink(from, to); err != nil {
		return false, err
	}
	return true, nil
}

// UpsertBlogger inserts b, or enriches an existing entry copy-on-write:
// non-empty Name/Profile and a non-nil Friends list overwrite the stored
// values on a clone of the struct, never in place. This is the streaming
// crawler's "fill in the stub I created earlier" operation.
func (c *Corpus) UpsertBlogger(b *Blogger) error {
	if b == nil || b.ID == "" {
		return fmt.Errorf("blog: blogger must have a non-empty ID")
	}
	existing, ok := c.Bloggers[b.ID]
	if !ok {
		nb := *b
		nb.Friends = append([]BloggerID(nil), b.Friends...)
		c.Bloggers[b.ID] = &nb
		c.linkEpoch++ // new graph node
		return nil
	}
	clone := *existing
	if b.Name != "" {
		clone.Name = b.Name
	}
	if b.Profile != "" {
		clone.Profile = b.Profile
	}
	if b.Friends != nil {
		clone.Friends = append([]BloggerID(nil), b.Friends...)
	}
	c.Bloggers[b.ID] = &clone
	return nil
}
