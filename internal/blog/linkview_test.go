package blog

import (
	"fmt"
	"testing"
)

// linkCorpus builds a corpus with n bloggers "b00".."b<n-1>" and the given
// links.
func linkCorpus(t testing.TB, n int, links [][2]int) *Corpus {
	t.Helper()
	c := NewCorpus()
	for i := 0; i < n; i++ {
		if err := c.AddBlogger(&Blogger{ID: bid(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range links {
		if err := c.AddLink(bid(l[0]), bid(l[1])); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func bid(i int) BloggerID { return BloggerID(fmt.Sprintf("b%02d", i)) }

// assertViewMatchesFresh checks a view's flat CSR against a from-scratch
// rebuild of the same corpus (fresh corpus → always takes the full-build
// path), edge for edge.
func assertViewMatchesFresh(t *testing.T, c *Corpus, v *LinkView) {
	t.Helper()
	fresh := c.buildLinkView(nil) // bypass the cache: guaranteed fresh base
	got, want := v.CSR(), fresh.CSR()
	if err := got.Validate(); err != nil {
		t.Fatalf("view CSR invalid: %v", err)
	}
	if got.NumNodes() != want.NumNodes() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("view CSR %d nodes/%d edges, fresh build %d/%d",
			got.NumNodes(), got.NumEdges(), want.NumNodes(), want.NumEdges())
	}
	for i := 0; i < got.NumNodes(); i++ {
		g, w := got.Out(i), want.Out(i)
		if len(g) != len(w) {
			t.Fatalf("row %d: %v vs fresh %v", i, g, w)
		}
		for k := range g {
			if g[k] != w[k] {
				t.Fatalf("row %d: %v vs fresh %v", i, g, w)
			}
		}
	}
}

func TestLinkViewCachedPerEpoch(t *testing.T) {
	c := linkCorpus(t, 4, [][2]int{{0, 1}, {1, 2}})
	v1 := c.LinkView()
	if v2 := c.LinkView(); v2 != v1 {
		t.Fatal("same epoch must return the cached view")
	}
	if c.LinkCSR() != v1.CSR() {
		t.Fatal("LinkCSR must serve the cached view's flat CSR")
	}
	if err := c.AddLink(bid(2), bid(3)); err != nil {
		t.Fatal(err)
	}
	if v3 := c.LinkView(); v3 == v1 {
		t.Fatal("a new effective link must invalidate the cached view")
	}
}

func TestLinkViewExtendsInPlace(t *testing.T) {
	c := linkCorpus(t, 6, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	v1 := c.LinkView()
	base := v1.Delta().Base()

	if err := c.AddLink(bid(3), bid(0)); err != nil {
		t.Fatal(err)
	}
	if err := c.AddLink(bid(4), bid(1)); err != nil {
		t.Fatal(err)
	}
	v2 := c.LinkViewFrom(v1)
	if v2.Delta().Base() != base {
		t.Fatal("extension must keep the frozen base CSR — O(delta), not a rebuild")
	}
	if got := v2.Delta().OverlaySize(); got != 2 {
		t.Fatalf("overlay size = %d, want 2 appended edges", got)
	}
	if v1.Delta().OverlaySize() != 0 {
		t.Fatal("extending must not mutate the previous view's overlay")
	}
	assertViewMatchesFresh(t, c, v2)

	// A second extension stacks on the same base.
	if err := c.AddLink(bid(5), bid(2)); err != nil {
		t.Fatal(err)
	}
	v3 := c.LinkViewFrom(v2)
	if v3.Delta().Base() != base || v3.Delta().OverlaySize() != 3 {
		t.Fatalf("stacked extension: base kept=%v overlay=%d", v3.Delta().Base() == base, v3.Delta().OverlaySize())
	}
	assertViewMatchesFresh(t, c, v3)
}

func TestLinkViewWithoutPrevBuildsFreshBase(t *testing.T) {
	c := linkCorpus(t, 4, [][2]int{{0, 1}})
	v1 := c.LinkView()
	if err := c.AddLink(bid(1), bid(2)); err != nil {
		t.Fatal(err)
	}
	v2 := c.LinkView() // nil prev: full invalidation path
	if v2.Delta().Base() == v1.Delta().Base() {
		t.Fatal("no prev view supplied: must freeze a fresh base")
	}
	if v2.Delta().OverlaySize() != 0 {
		t.Fatal("fresh base must start with an empty overlay")
	}
	assertViewMatchesFresh(t, c, v2)
}

func TestLinkViewFreshBaseOnNodeChange(t *testing.T) {
	c := linkCorpus(t, 3, [][2]int{{0, 1}, {1, 2}})
	v1 := c.LinkView()
	if err := c.AddBlogger(&Blogger{ID: bid(9)}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddLink(bid(9), bid(0)); err != nil {
		t.Fatal(err)
	}
	v2 := c.LinkViewFrom(v1)
	if v2.Delta().Base() == v1.Delta().Base() {
		t.Fatal("a blogger-set change must force a fresh base (node count moved)")
	}
	if v2.Delta().NumNodes() != 4 {
		t.Fatalf("new base has %d nodes, want 4", v2.Delta().NumNodes())
	}
	assertViewMatchesFresh(t, c, v2)
}

func TestLinkViewReindexForcesFreshBase(t *testing.T) {
	c := linkCorpus(t, 3, [][2]int{{0, 1}})
	v1 := c.LinkView()
	// Simulate a bulk edit: a non-append rewrite of Links, then Reindex.
	c.Links = []Link{{From: bid(1), To: bid(2)}}
	c.Reindex()
	v2 := c.LinkViewFrom(v1)
	if v2.Delta().Base() == v1.Delta().Base() {
		t.Fatal("Reindex must force a fresh base — Links is no longer a prefix extension")
	}
	assertViewMatchesFresh(t, c, v2)
	flat := v2.CSR()
	i1, _ := flat.Index(string(bid(1)))
	if row := flat.Out(int(i1)); len(row) != 1 {
		t.Fatalf("rewritten graph must have exactly the new edge: row=%v", row)
	}
}

// TestLinkViewCompaction drives the overlay past linkCompactThreshold (the
// 64 lower clamp on a tiny base) and checks it is merged into a fresh base
// whose edges match a from-scratch rebuild.
func TestLinkViewCompaction(t *testing.T) {
	n := 12 // 12·11 = 132 possible edges > 64 threshold
	c := linkCorpus(t, n, nil)
	v := c.LinkView()
	firstBase := v.Delta().Base()
	threshold := linkCompactThreshold(firstBase.NumEdges())
	if threshold != 64 {
		t.Fatalf("tiny base threshold = %d, want the 64 clamp", threshold)
	}
	compacted := false
	added := 0
	for i := 0; i < n && !compacted; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if err := c.AddLink(bid(i), bid(j)); err != nil {
				t.Fatal(err)
			}
			added++
			prev := v
			v = c.LinkViewFrom(v)
			if sz := v.Delta().OverlaySize(); sz > threshold {
				t.Fatalf("overlay size %d exceeds compaction threshold %d", sz, threshold)
			}
			if v.Delta().Base() != prev.Delta().Base() {
				compacted = true
				if v.Delta().OverlaySize() != 0 {
					t.Fatalf("freshly compacted view has overlay %d, want 0", v.Delta().OverlaySize())
				}
				break
			}
		}
	}
	if !compacted {
		t.Fatalf("overlay never compacted after %d appends (threshold %d)", added, threshold)
	}
	assertViewMatchesFresh(t, c, v)
	if v.CSR().NumEdges() != added {
		t.Fatalf("compacted view has %d edges, want %d", v.CSR().NumEdges(), added)
	}
}

func TestLinkViewSnapshotShares(t *testing.T) {
	c := linkCorpus(t, 3, [][2]int{{0, 1}})
	v := c.LinkView()
	s := c.Snapshot()
	if s.LinkView() != v {
		t.Fatal("snapshot at the same epoch must share the corpus's view")
	}
	if err := c.AddLink(bid(1), bid(2)); err != nil {
		t.Fatal(err)
	}
	if s.LinkView() != v {
		t.Fatal("mutating the original must not invalidate the snapshot's view")
	}
	if c.LinkViewFrom(v) == v {
		t.Fatal("the mutated original must build a new view")
	}
	if got := s.LinkCSR().NumEdges(); got != 1 {
		t.Fatalf("snapshot graph has %d edges, want the frozen 1", got)
	}
}

// ---------------------------------------------------------------------------
// Link-epoch stability: exactly the mutations that can change the link
// graph bump the epoch; everything else must leave cached views valid.

func TestLinkEpochStability(t *testing.T) {
	c := linkCorpus(t, 3, [][2]int{{0, 1}})
	post := &Post{ID: "p1", Author: bid(0), Body: "hello"}

	epochAfter := func(name string, wantBump bool, mutate func() error) {
		t.Helper()
		before, beforeRebuild := c.linkEpoch, c.linkRebuild
		if err := mutate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		bumped := c.linkEpoch != before
		if bumped != wantBump {
			t.Fatalf("%s: epoch bump = %v, want %v", name, bumped, wantBump)
		}
		if c.linkRebuild != beforeRebuild {
			t.Fatalf("%s: must never advance the rebuild counter", name)
		}
	}

	// Mutations that cannot change the link graph: no bump.
	epochAfter("AddPost", false, func() error { return c.AddPost(post) })
	epochAfter("AddComment", false, func() error {
		return c.AddComment("p1", Comment{Commenter: bid(1), Text: "nice"})
	})
	epochAfter("UpsertBlogger enrich", false, func() error {
		return c.UpsertBlogger(&Blogger{ID: bid(0), Name: "Zero"})
	})
	epochAfter("AddLink duplicate", false, func() error { return c.AddLink(bid(0), bid(1)) })
	epochAfter("AddLinkDedup duplicate", false, func() error {
		added, err := c.AddLinkDedup(bid(0), bid(1))
		if added {
			t.Fatal("AddLinkDedup reported a duplicate as added")
		}
		return err
	})

	// Mutations that do change the graph: exactly one bump each.
	epochAfter("AddLink new edge", true, func() error { return c.AddLink(bid(1), bid(2)) })
	epochAfter("AddLinkDedup new edge", true, func() error {
		added, err := c.AddLinkDedup(bid(2), bid(0))
		if err == nil && !added {
			t.Fatal("AddLinkDedup dropped a new edge")
		}
		return err
	})
	epochAfter("AddBlogger", true, func() error { return c.AddBlogger(&Blogger{ID: bid(7)}) })
	epochAfter("UpsertBlogger insert", true, func() error {
		return c.UpsertBlogger(&Blogger{ID: bid(8)})
	})

	// Reindex bumps both counters: the lineage may no longer be append-only.
	before, beforeRebuild := c.linkEpoch, c.linkRebuild
	c.Reindex()
	if c.linkEpoch == before || c.linkRebuild == beforeRebuild {
		t.Fatalf("Reindex must advance both counters: epoch %d→%d rebuild %d→%d",
			before, c.linkEpoch, beforeRebuild, c.linkRebuild)
	}

	// The duplicate-AddLink record is still kept for crawl fidelity even
	// though the epoch did not move.
	dups := 0
	for _, l := range c.Links {
		if l.From == bid(0) && l.To == bid(1) {
			dups++
		}
	}
	if dups != 2 {
		t.Fatalf("duplicate AddLink must still append the Link record: found %d", dups)
	}
}
