package blog

import "testing"

func snapshotFixture(t *testing.T) *Corpus {
	t.Helper()
	c := NewCorpus()
	for _, id := range []BloggerID{"ann", "bob"} {
		if err := c.AddBlogger(&Blogger{ID: id, Name: string(id)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.AddPost(&Post{ID: "p1", Author: "ann", Body: "hello world"}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddLink("ann", "bob"); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSnapshotIsolatedFromMutation(t *testing.T) {
	c := snapshotFixture(t)
	snap := c.Snapshot()

	if err := c.AddBlogger(&Blogger{ID: "cee"}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddPost(&Post{ID: "p2", Author: "cee", Body: "late arrival"}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddComment("p1", Comment{Commenter: "bob", Text: "nice"}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddLink("bob", "cee"); err != nil {
		t.Fatal(err)
	}
	if err := c.UpsertBlogger(&Blogger{ID: "bob", Profile: "updated"}); err != nil {
		t.Fatal(err)
	}

	if len(snap.Bloggers) != 2 || len(snap.Posts) != 1 || len(snap.Links) != 1 {
		t.Fatalf("snapshot changed shape: %d bloggers, %d posts, %d links",
			len(snap.Bloggers), len(snap.Posts), len(snap.Links))
	}
	if got := len(snap.Posts["p1"].Comments); got != 0 {
		t.Fatalf("COW violated: comment leaked into snapshot (%d comments)", got)
	}
	if snap.TotalComments("bob") != 0 {
		t.Fatal("COW violated: comment index leaked into snapshot")
	}
	if snap.Bloggers["bob"].Profile != "" {
		t.Fatal("COW violated: upsert mutated shared blogger")
	}
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}

	// The mutable side sees everything.
	if len(c.Posts["p1"].Comments) != 1 || c.TotalComments("bob") != 1 {
		t.Fatal("mutable corpus lost the comment")
	}
	if c.Bloggers["bob"].Profile != "updated" {
		t.Fatal("mutable corpus lost the upsert")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddCommentErrors(t *testing.T) {
	c := snapshotFixture(t)
	if err := c.AddComment("nope", Comment{Commenter: "bob"}); err == nil {
		t.Fatal("expected error for unknown post")
	}
	if err := c.AddComment("p1", Comment{Commenter: "ghost"}); err == nil {
		t.Fatal("expected error for unknown commenter")
	}
}

func TestUpsertBloggerKeepsExistingFields(t *testing.T) {
	c := snapshotFixture(t)
	// An ID-only upsert (a stub reference) must not erase known fields.
	if err := c.UpsertBlogger(&Blogger{ID: "ann"}); err != nil {
		t.Fatal(err)
	}
	if c.Bloggers["ann"].Name != "ann" {
		t.Fatal("stub upsert erased the name")
	}
	if err := c.UpsertBlogger(&Blogger{ID: "new", Friends: []BloggerID{"ann"}}); err != nil {
		t.Fatal(err)
	}
	if len(c.Bloggers["new"].Friends) != 1 {
		t.Fatal("insert path lost friends")
	}
}
