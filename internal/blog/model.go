// Package blog defines the data model of the blogosphere MASS analyzes:
// bloggers, posts, comments, and hyperlinks between blogs, assembled into a
// Corpus with the derived indexes the influence analyzer needs (per-blogger
// posts, per-commenter totals, link adjacency).
//
// The model mirrors the paper's §II: a set of bloggers with their posts,
// the comments on the posts and the corresponding commenters, plus the
// external-link network that feeds the General-Links (GL) authority score.
package blog

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"mass/internal/graph"
)

// BloggerID identifies a blogger uniquely within a corpus.
type BloggerID string

// PostID identifies a post uniquely within a corpus.
type PostID string

// Comment is one comment left by Commenter on the enclosing post. Sentiment
// is not stored here; the comment analyzer derives it from Text.
type Comment struct {
	Commenter BloggerID `xml:"commenter,attr"`
	Text      string    `xml:"text"`
	Posted    time.Time `xml:"posted,attr"`
}

// Post is a single blog post by Author. Comments are in arrival order.
type Post struct {
	ID       PostID    `xml:"id,attr"`
	Author   BloggerID `xml:"author,attr"`
	Title    string    `xml:"title"`
	Body     string    `xml:"body"`
	Posted   time.Time `xml:"posted,attr"`
	Comments []Comment `xml:"comments>comment"`
	// Tags are the author's folksonomy labels on the post; tag-based
	// social interest discovery (paper reference [6]) mines interest
	// groups from them.
	Tags []string `xml:"tags>tag,omitempty"`
	// TrueDomain is the generator's planted ground-truth domain. Empty for
	// real crawls; used only for evaluation, never by the analyzer.
	TrueDomain string `xml:"trueDomain,attr,omitempty"`
}

// Blogger is one member of the blogosphere. Profile is free text (interests,
// bio) used by the personalized-recommendation scenario.
type Blogger struct {
	ID      BloggerID `xml:"id,attr"`
	Name    string    `xml:"name"`
	Profile string    `xml:"profile"`
	// Friends is the blogger's declared friend list (demo §IV: crawling may
	// be restricted to a friend network).
	Friends []BloggerID `xml:"friends>friend"`
}

// Link is a hyperlink from one blogger's space to another's ("when a person
// finds a blog interesting, s/he may directly add a link to it"). These
// links form the authority (GL) graph.
type Link struct {
	From BloggerID `xml:"from,attr"`
	To   BloggerID `xml:"to,attr"`
}

// Corpus is a complete blogosphere snapshot plus derived indexes. Build the
// indexes with Reindex after bulk mutation; the constructors and AddX
// helpers keep them current automatically.
type Corpus struct {
	Bloggers map[BloggerID]*Blogger
	Posts    map[PostID]*Post
	Links    []Link

	postsByAuthor map[BloggerID][]PostID
	totalComments map[BloggerID]int // TC(bj) in Eq.3
	outLinks      map[BloggerID][]BloggerID
	inLinks       map[BloggerID][]BloggerID

	// linkEpoch counts every mutation that can change the hyperlink graph
	// (blogger added, effective link added, reindex). Two corpora from the
	// same mutation lineage with equal epochs therefore have identical link
	// graphs, which lets an incremental analyzer skip re-running PageRank.
	linkEpoch uint64

	// linkRebuild counts the mutations after which Links may no longer be a
	// prefix-extension of any earlier state (today: Reindex after bulk
	// edits). Incremental link views extend across epochs only while this
	// counter is unchanged; a bump forces the fresh-base fallback.
	linkRebuild uint64

	// linkView caches the incremental link-graph view for the current
	// linkEpoch (see LinkView). Snapshots inherit the pointer, so across
	// one epoch the whole lineage builds the view at most once.
	linkView atomic.Pointer[LinkView]
}

// LinkView pins one link epoch's incremental graph view: a DeltaCSR
// overlay over a frozen base CSR, plus the prefix of Corpus.Links folded
// into it. Views are immutable once published (the overlay is extended by
// cloning, never in place), so one view can be shared by the live corpus,
// its snapshots, and the analyzer's solver state simultaneously.
type LinkView struct {
	epoch   uint64
	rebuild uint64
	nLinks  int
	delta   *graph.DeltaCSR

	// flat is the lazily compacted plain-CSR rendering of the view, for
	// consumers that need sorted rows (personalized PageRank, baselines)
	// or a warm-sweep fallback. Built at most once per view; concurrent
	// racing builders store equivalent results and one wins.
	flat atomic.Pointer[graph.CSR]
}

// Epoch returns the link epoch the view was built at.
func (v *LinkView) Epoch() uint64 { return v.epoch }

// Delta returns the view's incremental overlay (immutable; do not mutate).
func (v *LinkView) Delta() *graph.DeltaCSR { return v.delta }

// CSR returns the flat CSR rendering of the view, compacting the overlay
// on first use and caching the result on the view.
func (v *LinkView) CSR() *graph.CSR {
	if f := v.flat.Load(); f != nil {
		return f
	}
	f := v.delta.Flatten()
	v.flat.Store(f)
	return f
}

// linkCompactThreshold is the overlay size at which an extended view is
// merged back into a fresh base CSR: an eighth of the base edge count,
// clamped to [64, 8192]. The lower clamp keeps tiny graphs from compacting
// on every flush; the upper one bounds the per-flush overlay clone cost,
// which is O(overlay), independently of graph size.
func linkCompactThreshold(baseEdges int) int {
	t := baseEdges / 8
	if t < 64 {
		t = 64
	}
	if t > 8192 {
		t = 8192
	}
	return t
}

// LinkCSR returns the frozen CSR view of the hyperlink graph: nodes are
// the corpus's bloggers in sorted-ID order (so dense index i is exactly
// position i of BloggerIDs), edges are the deduplicated Links. The view is
// built once per link epoch and cached — snapshots taken at the same epoch
// share it, so a flush whose link graph is unchanged pays nothing here.
//
// Like every read method on Corpus, LinkCSR is safe to call concurrently
// with other reads (snapshots served to query traffic) but not with
// mutations; the ingestion engine only analyzes frozen snapshots.
func (c *Corpus) LinkCSR() *graph.CSR {
	return c.LinkViewFrom(nil).CSR()
}

// LinkView returns the incremental link-graph view for the current epoch,
// building a fresh one (empty overlay over a newly frozen base) if none is
// cached. Callers that can supply the previous epoch's view should prefer
// LinkViewFrom, which extends it in O(delta) instead.
func (c *Corpus) LinkView() *LinkView {
	return c.LinkViewFrom(nil)
}

// LinkViewFrom returns the link view for the corpus's current epoch. When
// prev is a view of the same lineage with the same node set, the new view
// is built by cloning prev's overlay and applying only the Links appended
// since prev — O(delta), the tentpole path that keeps a link-batch flush
// from paying O(graph). Otherwise (nil prev, a blogger-set change, a
// Reindex, or an overlay past the compaction threshold) it falls back to
// freezing a fresh base CSR — full invalidation, exactly the pre-delta
// behavior.
//
// The result is cached on the corpus per epoch and shared with snapshots.
// Like LinkCSR, safe concurrently with reads, not with mutations.
func (c *Corpus) LinkViewFrom(prev *LinkView) *LinkView {
	if v := c.linkView.Load(); v != nil && v.epoch == c.linkEpoch && v.rebuild == c.linkRebuild {
		return v
	}
	v := c.buildLinkView(prev)
	c.linkView.Store(v)
	return v
}

// extendableFrom reports whether prev can seed an O(delta) extension for
// the corpus's current state: same append-only lineage (rebuild counter),
// a Links prefix, and an unchanged node count. Node count equality implies
// node set equality within a lineage, because the corpus API never removes
// bloggers without a Reindex.
func (c *Corpus) extendableFrom(prev *LinkView) bool {
	return prev != nil &&
		prev.rebuild == c.linkRebuild &&
		prev.nLinks <= len(c.Links) &&
		prev.delta.NumNodes() == len(c.Bloggers)
}

func (c *Corpus) buildLinkView(prev *LinkView) *LinkView {
	if c.extendableFrom(prev) {
		base := prev.delta.Base()
		d := prev.delta.Clone()
		for _, l := range c.Links[prev.nLinks:] {
			fi, okF := base.Index(string(l.From))
			ti, okT := base.Index(string(l.To))
			if !okF || !okT {
				// Unknown endpoints can only appear in a corpus that fails
				// Validate; dropping the edge matches the fresh build.
				continue
			}
			d.AddEdge(int32(fi), int32(ti))
		}
		if d.OverlaySize() > linkCompactThreshold(base.NumEdges()) {
			d = graph.NewDeltaCSR(d.Compact())
		}
		return &LinkView{epoch: c.linkEpoch, rebuild: c.linkRebuild, nLinks: len(c.Links), delta: d}
	}

	bloggers := c.BloggerIDs()
	ids := make([]string, len(bloggers))
	idx := make(map[BloggerID]int32, len(bloggers))
	for i, id := range bloggers {
		ids[i] = string(id)
		idx[id] = int32(i)
	}
	from := make([]int32, 0, len(c.Links))
	to := make([]int32, 0, len(c.Links))
	for _, l := range c.Links {
		fi, okF := idx[l.From]
		ti, okT := idx[l.To]
		if !okF || !okT {
			continue
		}
		from = append(from, fi)
		to = append(to, ti)
	}
	csr := graph.NewCSR(ids, from, to)
	return &LinkView{
		epoch:   c.linkEpoch,
		rebuild: c.linkRebuild,
		nLinks:  len(c.Links),
		delta:   graph.NewDeltaCSR(csr),
	}
}

// LinkEpoch returns the corpus's link-graph mutation counter. Snapshots
// carry the epoch of the corpus they were taken from; an unchanged epoch
// between two snapshots of the same corpus lineage means the blogger set
// and link edges are identical.
func (c *Corpus) LinkEpoch() uint64 { return c.linkEpoch }

// NewCorpus returns an empty corpus with initialized maps.
func NewCorpus() *Corpus {
	return &Corpus{
		Bloggers:      map[BloggerID]*Blogger{},
		Posts:         map[PostID]*Post{},
		postsByAuthor: map[BloggerID][]PostID{},
		totalComments: map[BloggerID]int{},
		outLinks:      map[BloggerID][]BloggerID{},
		inLinks:       map[BloggerID][]BloggerID{},
	}
}

// AddBlogger inserts b. It returns an error on duplicate or empty ID.
func (c *Corpus) AddBlogger(b *Blogger) error {
	if b == nil || b.ID == "" {
		return fmt.Errorf("blog: blogger must have a non-empty ID")
	}
	if _, dup := c.Bloggers[b.ID]; dup {
		return fmt.Errorf("blog: duplicate blogger %q", b.ID)
	}
	c.Bloggers[b.ID] = b
	// A new blogger is a new graph node (it changes the CSR node set and
	// the PageRank teleport denominator), so this bump is never spurious —
	// but it does force incremental consumers onto the fresh-base path.
	c.linkEpoch++
	return nil
}

// AddPost inserts p and updates the author and commenter indexes. The
// author and every commenter must already exist in the corpus.
func (c *Corpus) AddPost(p *Post) error {
	if p == nil || p.ID == "" {
		return fmt.Errorf("blog: post must have a non-empty ID")
	}
	if _, dup := c.Posts[p.ID]; dup {
		return fmt.Errorf("blog: duplicate post %q", p.ID)
	}
	if _, ok := c.Bloggers[p.Author]; !ok {
		return fmt.Errorf("blog: post %q has unknown author %q", p.ID, p.Author)
	}
	for i, cm := range p.Comments {
		if _, ok := c.Bloggers[cm.Commenter]; !ok {
			return fmt.Errorf("blog: post %q comment %d has unknown commenter %q", p.ID, i, cm.Commenter)
		}
	}
	c.Posts[p.ID] = p
	c.postsByAuthor[p.Author] = append(c.postsByAuthor[p.Author], p.ID)
	for _, cm := range p.Comments {
		c.totalComments[cm.Commenter]++
	}
	return nil
}

// AddLink records a hyperlink between two existing bloggers. Self-links are
// rejected: a link to one's own space carries no authority signal.
func (c *Corpus) AddLink(from, to BloggerID) error {
	if from == to {
		return fmt.Errorf("blog: self-link %q rejected", from)
	}
	if _, ok := c.Bloggers[from]; !ok {
		return fmt.Errorf("blog: link from unknown blogger %q", from)
	}
	if _, ok := c.Bloggers[to]; !ok {
		return fmt.Errorf("blog: link to unknown blogger %q", to)
	}
	// An exact-duplicate edge cannot change the link graph — parallel edges
	// collapse in every CSR view — so it must not bump the epoch and
	// invalidate cached views (the link record itself is still kept, for
	// crawl fidelity on save/load). Only an effectively new edge bumps.
	dup := false
	for _, existing := range c.outLinks[from] {
		if existing == to {
			dup = true
			break
		}
	}
	c.Links = append(c.Links, Link{From: from, To: to})
	c.outLinks[from] = append(c.outLinks[from], to)
	c.inLinks[to] = append(c.inLinks[to], from)
	if !dup {
		c.linkEpoch++
	}
	return nil
}

// Reindex rebuilds all derived indexes from Bloggers, Posts and Links.
// Call it after deserializing or bulk-editing a corpus. Bulk edits may
// have changed the link graph arbitrarily — including non-append rewrites
// of Links — so both the link epoch and the rebuild counter advance,
// forcing incremental link views onto the fresh-base path.
func (c *Corpus) Reindex() {
	c.linkEpoch++
	c.linkRebuild++
	c.postsByAuthor = map[BloggerID][]PostID{}
	c.totalComments = map[BloggerID]int{}
	c.outLinks = map[BloggerID][]BloggerID{}
	c.inLinks = map[BloggerID][]BloggerID{}
	ids := make([]string, 0, len(c.Posts))
	for id := range c.Posts {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	for _, id := range ids {
		p := c.Posts[PostID(id)]
		c.postsByAuthor[p.Author] = append(c.postsByAuthor[p.Author], p.ID)
		for _, cm := range p.Comments {
			c.totalComments[cm.Commenter]++
		}
	}
	for _, l := range c.Links {
		c.outLinks[l.From] = append(c.outLinks[l.From], l.To)
		c.inLinks[l.To] = append(c.inLinks[l.To], l.From)
	}
}

// PostsBy returns the IDs of all posts authored by b, in insertion order
// (or sorted order after Reindex).
func (c *Corpus) PostsBy(b BloggerID) []PostID { return c.postsByAuthor[b] }

// TotalComments returns TC(b): the total number of comments blogger b has
// left on any post in the corpus.
func (c *Corpus) TotalComments(b BloggerID) int { return c.totalComments[b] }

// OutLinks returns the bloggers b links to.
func (c *Corpus) OutLinks(b BloggerID) []BloggerID { return c.outLinks[b] }

// InLinks returns the bloggers linking to b.
func (c *Corpus) InLinks(b BloggerID) []BloggerID { return c.inLinks[b] }

// BloggerIDs returns all blogger IDs in sorted order, for deterministic
// iteration.
func (c *Corpus) BloggerIDs() []BloggerID {
	ids := make([]BloggerID, 0, len(c.Bloggers))
	for id := range c.Bloggers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// PostIDs returns all post IDs in sorted order.
func (c *Corpus) PostIDs() []PostID {
	ids := make([]PostID, 0, len(c.Posts))
	for id := range c.Posts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Validate checks referential integrity of the whole corpus: every post
// author, commenter, link endpoint and friend must exist, and IDs must be
// non-empty. It returns the first problem found.
func (c *Corpus) Validate() error {
	for id, b := range c.Bloggers {
		if id == "" || b == nil || b.ID != id {
			return fmt.Errorf("blog: blogger map entry %q inconsistent", id)
		}
		for _, f := range b.Friends {
			if _, ok := c.Bloggers[f]; !ok {
				return fmt.Errorf("blog: blogger %q has unknown friend %q", id, f)
			}
		}
	}
	for id, p := range c.Posts {
		if id == "" || p == nil || p.ID != id {
			return fmt.Errorf("blog: post map entry %q inconsistent", id)
		}
		if _, ok := c.Bloggers[p.Author]; !ok {
			return fmt.Errorf("blog: post %q has unknown author %q", id, p.Author)
		}
		for i, cm := range p.Comments {
			if _, ok := c.Bloggers[cm.Commenter]; !ok {
				return fmt.Errorf("blog: post %q comment %d unknown commenter %q", id, i, cm.Commenter)
			}
		}
	}
	for _, l := range c.Links {
		if _, ok := c.Bloggers[l.From]; !ok {
			return fmt.Errorf("blog: link from unknown blogger %q", l.From)
		}
		if _, ok := c.Bloggers[l.To]; !ok {
			return fmt.Errorf("blog: link to unknown blogger %q", l.To)
		}
		if l.From == l.To {
			return fmt.Errorf("blog: self-link on %q", l.From)
		}
	}
	return nil
}
