// Package textutil provides the text-processing substrate used throughout
// MASS: tokenization, stopword filtering, a light suffix stemmer, shingling
// for near-duplicate detection, and sparse term-frequency vectors.
//
// All functions are deterministic and allocation-conscious; they operate on
// plain strings so that higher layers (classification, sentiment, novelty)
// stay independent of any particular corpus representation.
package textutil

import (
	"strings"
	"unicode"
)

// Tokenize splits text into lowercase word tokens. A token is a maximal run
// of letters, digits, or apostrophes; apostrophes are stripped from the
// edges so "don't" stays one token while quoting does not leak in.
func Tokenize(text string) []string {
	tokens := make([]string, 0, len(text)/6)
	var b strings.Builder
	flush := func() {
		if b.Len() == 0 {
			return
		}
		tok := strings.Trim(b.String(), "'")
		if tok != "" {
			tokens = append(tokens, tok)
		}
		b.Reset()
	}
	for _, r := range text {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
		case r == '\'':
			b.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	return tokens
}

// stopwords is the standard English function-word list used by the analyzer.
// Kept small on purpose: MASS only needs it to de-noise classification and
// novelty features, not for retrieval-grade processing.
var stopwords = map[string]struct{}{}

func init() {
	for _, w := range strings.Fields(`a an and are as at be but by for from
		has have he her hers him his i if in into is it its me my not of on
		or our ours she so that the their them then there these they this to
		us was we were what when where which who will with you your yours
		am been being did do does doing had having how than too very can
		just also about after before between both each few more most other
		some such only own same s t don should now`) {
		stopwords[w] = struct{}{}
	}
}

// IsStopword reports whether tok is an English function word.
func IsStopword(tok string) bool {
	_, ok := stopwords[tok]
	return ok
}

// RemoveStopwords returns the tokens that are not stopwords, preserving
// order. The input slice is not modified.
func RemoveStopwords(tokens []string) []string {
	out := make([]string, 0, len(tokens))
	for _, t := range tokens {
		if !IsStopword(t) {
			out = append(out, t)
		}
	}
	return out
}

// Stem applies a light suffix stemmer (a simplified Porter step-1): plural
// and participle endings are removed when the remaining stem stays at least
// three characters. It deliberately under-stems rather than over-stems so
// domain vocabulary words remain distinguishable.
func Stem(tok string) string {
	n := len(tok)
	switch {
	case n > 4 && strings.HasSuffix(tok, "ies"):
		return tok[:n-3] + "y"
	case n > 4 && strings.HasSuffix(tok, "sses"):
		return tok[:n-2]
	case n > 4 && strings.HasSuffix(tok, "ing") && hasVowel(tok[:n-3]):
		return tok[:n-3]
	case n > 4 && strings.HasSuffix(tok, "edly"):
		return tok[:n-4]
	case n > 3 && strings.HasSuffix(tok, "ed") && hasVowel(tok[:n-2]):
		return tok[:n-2]
	case n > 3 && strings.HasSuffix(tok, "s") && !strings.HasSuffix(tok, "ss") && !strings.HasSuffix(tok, "us"):
		return tok[:n-1]
	}
	return tok
}

func hasVowel(s string) bool {
	return strings.ContainsAny(s, "aeiouy")
}

// Terms is the full analyzer chain used by the classifier: tokenize,
// drop stopwords, stem.
func Terms(text string) []string {
	toks := RemoveStopwords(Tokenize(text))
	for i, t := range toks {
		toks[i] = Stem(t)
	}
	return toks
}

// WordCount returns the number of word tokens in text. The paper measures
// post quality by length; length is defined as the token count.
func WordCount(text string) int {
	return len(Tokenize(text))
}
