package textutil_test

import (
	"fmt"

	"mass/internal/textutil"
)

func ExampleTerms() {
	fmt.Println(textutil.Terms("The players were running to the stadium"))
	// Output:
	// [player runn stadium]
}

func ExampleTermVector_Cosine() {
	a := textutil.NewTermVector("stock market and bank interest")
	b := textutil.NewTermVector("the bank raised the interest rate")
	c := textutil.NewTermVector("watercolor painting on canvas")
	fmt.Printf("finance vs finance: %.2f\n", a.Cosine(b))
	fmt.Printf("finance vs art:     %.2f\n", a.Cosine(c))
	// Output:
	// finance vs finance: 0.50
	// finance vs art:     0.00
}
