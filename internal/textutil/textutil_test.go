package textutil

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeBasic(t *testing.T) {
	got := Tokenize("Hello, World! It's 2010.")
	want := []string{"hello", "world", "it's", "2010"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeEmpty(t *testing.T) {
	if got := Tokenize(""); len(got) != 0 {
		t.Fatalf("Tokenize(empty) = %v, want empty", got)
	}
	if got := Tokenize("!!! ... ---"); len(got) != 0 {
		t.Fatalf("Tokenize(punct) = %v, want empty", got)
	}
}

func TestTokenizeApostropheEdges(t *testing.T) {
	got := Tokenize("'quoted' don't ''")
	want := []string{"quoted", "don't"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeUnicode(t *testing.T) {
	got := Tokenize("Café blogs über ALLES")
	want := []string{"café", "blogs", "über", "alles"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestStopwords(t *testing.T) {
	if !IsStopword("the") || !IsStopword("and") {
		t.Fatal("expected 'the' and 'and' to be stopwords")
	}
	if IsStopword("basketball") {
		t.Fatal("'basketball' must not be a stopword")
	}
	got := RemoveStopwords([]string{"the", "quick", "and", "lazy", "fox"})
	want := []string{"quick", "lazy", "fox"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("RemoveStopwords = %v, want %v", got, want)
	}
}

func TestStem(t *testing.T) {
	cases := map[string]string{
		"running":  "runn",
		"played":   "play",
		"cities":   "city",
		"dogs":     "dog",
		"classes":  "class",
		"class":    "class",
		"bus":      "bus",
		"go":       "go",
		"economy":  "economy",
		"posts":    "post",
		"blogging": "blogg",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemKeepsShortTokens(t *testing.T) {
	for _, tok := range []string{"as", "is", "s", ""} {
		if got := Stem(tok); got != tok {
			t.Errorf("Stem(%q) = %q, want unchanged", tok, got)
		}
	}
}

func TestTermsChain(t *testing.T) {
	got := Terms("The players were running fast")
	want := []string{"player", "runn", "fast"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Terms = %v, want %v", got, want)
	}
}

func TestWordCount(t *testing.T) {
	if got := WordCount("one two three"); got != 3 {
		t.Fatalf("WordCount = %d, want 3", got)
	}
	if got := WordCount(""); got != 0 {
		t.Fatalf("WordCount(empty) = %d, want 0", got)
	}
}

func TestTermVectorDotCosine(t *testing.T) {
	a := TermVector{"x": 1, "y": 2}
	b := TermVector{"y": 3, "z": 4}
	if got := a.Dot(b); got != 6 {
		t.Fatalf("Dot = %v, want 6", got)
	}
	cos := a.Cosine(b)
	want := 6 / (math.Sqrt(5) * 5)
	if math.Abs(cos-want) > 1e-12 {
		t.Fatalf("Cosine = %v, want %v", cos, want)
	}
}

func TestCosineEmpty(t *testing.T) {
	if got := (TermVector{}).Cosine(TermVector{"a": 1}); got != 0 {
		t.Fatalf("Cosine(empty, x) = %v, want 0", got)
	}
}

func TestTermVectorAdd(t *testing.T) {
	a := TermVector{"x": 1}
	a.Add(TermVector{"x": 2, "y": 1}, 0.5)
	if a["x"] != 2 || a["y"] != 0.5 {
		t.Fatalf("Add result = %v", a)
	}
}

func TestTopTermsDeterministic(t *testing.T) {
	v := TermVector{"b": 2, "a": 2, "c": 5}
	got := v.TopTerms(3)
	want := []string{"c", "a", "b"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TopTerms = %v, want %v", got, want)
	}
	if got := v.TopTerms(10); len(got) != 3 {
		t.Fatalf("TopTerms over-length = %v", got)
	}
}

func TestShingles(t *testing.T) {
	s := Shingles("a b c d", 2)
	for _, key := range []string{"a b", "b c", "c d"} {
		if _, ok := s[key]; !ok {
			t.Errorf("missing shingle %q", key)
		}
	}
	if len(s) != 3 {
		t.Fatalf("len(Shingles) = %d, want 3", len(s))
	}
	if len(Shingles("a", 2)) != 0 {
		t.Fatal("short text must produce no shingles")
	}
	if len(Shingles("a b", 0)) != 0 {
		t.Fatal("k=0 must produce no shingles")
	}
}

func TestJaccard(t *testing.T) {
	a := Shingles("the cat sat on the mat", 3)
	if got := Jaccard(a, a); got != 1 {
		t.Fatalf("Jaccard(a,a) = %v, want 1", got)
	}
	b := Shingles("completely different words here now", 3)
	if got := Jaccard(a, b); got != 0 {
		t.Fatalf("Jaccard(disjoint) = %v, want 0", got)
	}
	if got := Jaccard(nil, nil); got != 0 {
		t.Fatalf("Jaccard(empty) = %v, want 0", got)
	}
}

// Property: tokenization output never contains uppercase or separators.
func TestTokenizePropertyLowercaseNoSeps(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok == "" || tok != strings.ToLower(tok) {
				return false
			}
			if strings.ContainsAny(tok, " \t\n.,!?") {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Dot is symmetric and Cosine stays within [0, 1+ε] for
// non-negative term frequencies (as produced by NewTermVector).
func TestVectorPropertySymmetry(t *testing.T) {
	f := func(a, b string) bool {
		va, vb := NewTermVector(a), NewTermVector(b)
		if va.Dot(vb) != vb.Dot(va) {
			return false
		}
		c := va.Cosine(vb)
		return c >= 0 && c <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Jaccard is symmetric and bounded in [0,1].
func TestJaccardProperty(t *testing.T) {
	f := func(a, b string) bool {
		sa, sb := Shingles(a, 2), Shingles(b, 2)
		j1, j2 := Jaccard(sa, sb), Jaccard(sb, sa)
		return j1 == j2 && j1 >= 0 && j1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: stemming never empties a token and never grows it by more
// than one rune (the "ies"→"y" rule shrinks; nothing extends length).
func TestStemPropertyLength(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			st := Stem(tok)
			if st == "" && tok != "" {
				return false
			}
			if len(st) > len(tok) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
