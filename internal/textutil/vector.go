package textutil

import (
	"math"
	"sort"
)

// TermVector is a sparse term-frequency vector over stemmed terms.
type TermVector map[string]float64

// NewTermVector builds a term-frequency vector from raw text using the
// standard analyzer chain (Tokenize → RemoveStopwords → Stem).
func NewTermVector(text string) TermVector {
	v := TermVector{}
	for _, t := range Terms(text) {
		v[t]++
	}
	return v
}

// Add accumulates other into v with the given weight.
func (v TermVector) Add(other TermVector, weight float64) {
	for t, c := range other {
		v[t] += c * weight
	}
}

// Dot returns the inner product of two sparse vectors.
func (v TermVector) Dot(other TermVector) float64 {
	// Iterate the smaller map for speed.
	a, b := v, other
	if len(b) < len(a) {
		a, b = b, a
	}
	var s float64
	for t, c := range a {
		if d, ok := b[t]; ok {
			s += c * d
		}
	}
	return s
}

// Norm returns the Euclidean norm of v.
func (v TermVector) Norm() float64 {
	var s float64
	for _, c := range v {
		s += c * c
	}
	return math.Sqrt(s)
}

// Cosine returns the cosine similarity between v and other, or 0 when
// either vector is empty.
func (v TermVector) Cosine(other TermVector) float64 {
	nv, no := v.Norm(), other.Norm()
	if nv == 0 || no == 0 {
		return 0
	}
	return v.Dot(other) / (nv * no)
}

// TopTerms returns the n highest-weight terms in descending weight order,
// with ties broken alphabetically so results are deterministic.
func (v TermVector) TopTerms(n int) []string {
	type tw struct {
		t string
		w float64
	}
	all := make([]tw, 0, len(v))
	for t, w := range v {
		all = append(all, tw{t, w})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].w != all[j].w {
			return all[i].w > all[j].w
		}
		return all[i].t < all[j].t
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].t
	}
	return out
}

// Shingles returns the set of k-gram token shingles of text, joined with a
// single space. Shingling is the basis of the near-duplicate (carbon-copy)
// detector in the novelty analyzer.
func Shingles(text string, k int) map[string]struct{} {
	toks := Tokenize(text)
	set := map[string]struct{}{}
	if k <= 0 || len(toks) < k {
		return set
	}
	for i := 0; i+k <= len(toks); i++ {
		key := toks[i]
		for j := i + 1; j < i+k; j++ {
			key += " " + toks[j]
		}
		set[key] = struct{}{}
	}
	return set
}

// ShingleHashes returns the 64-bit FNV-1a hashes of the k-gram token
// shingles of text (tokens joined by a single space), deduplicated and
// sorted ascending. Hashing shingles instead of materializing their strings
// makes the near-duplicate detector's index an integer-keyed map and a
// serialized shingle set a flat 8-byte-per-entry array; a 64-bit hash makes
// cross-shingle collisions (a slightly inflated Jaccard overlap) vanishingly
// rare at realistic corpus sizes. The hash is a fixed function of the text,
// so persisted shingle sets remain comparable across processes.
func ShingleHashes(text string, k int) []uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	toks := Tokenize(text)
	if k <= 0 || len(toks) < k {
		return nil
	}
	out := make([]uint64, 0, len(toks)-k+1)
	for i := 0; i+k <= len(toks); i++ {
		h := uint64(offset64)
		for j := i; j < i+k; j++ {
			if j > i {
				h ^= ' '
				h *= prime64
			}
			for m := 0; m < len(toks[j]); m++ {
				h ^= uint64(toks[j][m])
				h *= prime64
			}
		}
		out = append(out, h)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	dst := out[:0]
	var last uint64
	for i, h := range out {
		if i == 0 || h != last {
			dst = append(dst, h)
			last = h
		}
	}
	return dst
}

// Jaccard returns the Jaccard similarity |a∩b| / |a∪b| of two shingle sets,
// and 0 when both are empty.
func Jaccard(a, b map[string]struct{}) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	small, large := a, b
	if len(large) < len(small) {
		small, large = large, small
	}
	inter := 0
	for s := range small {
		if _, ok := large[s]; ok {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}
