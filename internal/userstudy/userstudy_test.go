package userstudy

import (
	"testing"

	"mass/internal/blog"
	"mass/internal/lexicon"
	"mass/internal/synth"
)

func gtFixture(t *testing.T) *synth.GroundTruth {
	t.Helper()
	_, gt, err := synth.Generate(synth.Config{Seed: 41, Bloggers: 100, Posts: 400})
	if err != nil {
		t.Fatal(err)
	}
	return gt
}

func TestScoreBounds(t *testing.T) {
	gt := gtFixture(t)
	ranking := gt.TrueTopK(lexicon.Sports, 3)
	if len(ranking) == 0 {
		t.Skip("no sports bloggers in this seed")
	}
	s, err := Panel{Seed: 1}.Score(ranking, lexicon.Sports, gt)
	if err != nil {
		t.Fatal(err)
	}
	if s < 1 || s > 5 {
		t.Fatalf("score %v outside 1..5", s)
	}
}

func TestScoreErrors(t *testing.T) {
	gt := gtFixture(t)
	if _, err := (Panel{}).Score(nil, lexicon.Art, gt); err == nil {
		t.Fatal("empty ranking must error")
	}
	if _, err := (Panel{}).Score([]blog.BloggerID{"x"}, lexicon.Art, nil); err == nil {
		t.Fatal("nil ground truth must error")
	}
}

func TestDeterministicPanel(t *testing.T) {
	gt := gtFixture(t)
	ranking := gt.TrueTopK(lexicon.Art, 3)
	if len(ranking) == 0 {
		t.Skip("no art bloggers")
	}
	p := Panel{Seed: 7}
	s1, err := p.Score(ranking, lexicon.Art, gt)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := p.Score(ranking, lexicon.Art, gt)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatalf("same seed must give same score: %v vs %v", s1, s2)
	}
	s3, err := Panel{Seed: 8}.Score(ranking, lexicon.Art, gt)
	if err != nil {
		t.Fatal(err)
	}
	if s1 == s3 {
		t.Fatal("different panels should (almost surely) differ")
	}
}

func TestTrueExpertsBeatOffDomain(t *testing.T) {
	gt := gtFixture(t)
	domain := lexicon.Travel
	experts := gt.TrueTopK(domain, 3)
	if len(experts) < 3 {
		t.Skip("not enough travel bloggers")
	}
	// Off-domain list: top Sports bloggers evaluated for Travel.
	offDomain := gt.TrueTopK(lexicon.Sports, 3)
	p := Panel{Seed: 11}
	sExpert, err := p.Score(experts, domain, gt)
	if err != nil {
		t.Fatal(err)
	}
	sOff, err := p.Score(offDomain, domain, gt)
	if err != nil {
		t.Fatal(err)
	}
	if sExpert <= sOff {
		t.Fatalf("domain experts must outscore off-domain bloggers: %v vs %v", sExpert, sOff)
	}
	if sExpert < 3.5 {
		t.Fatalf("true experts should score well, got %v", sExpert)
	}
}

func TestHaloCreditExists(t *testing.T) {
	// A generally prominent blogger earns more than a nobody, even
	// off-domain.
	gt := &synth.GroundTruth{
		Expertise: map[blog.BloggerID]map[string]float64{
			"star":   {lexicon.Sports: 1.0},
			"nobody": {lexicon.Sports: 0.01},
		},
		PrimaryDomain: map[blog.BloggerID]string{"star": lexicon.Sports, "nobody": lexicon.Sports},
		Activity:      map[blog.BloggerID]float64{"star": 1, "nobody": 0.05},
	}
	p := Panel{Seed: 3, NoiseAmplitude: 0.01}
	sStar, err := p.Score([]blog.BloggerID{"star"}, lexicon.Art, gt)
	if err != nil {
		t.Fatal(err)
	}
	sNobody, err := p.Score([]blog.BloggerID{"nobody"}, lexicon.Art, gt)
	if err != nil {
		t.Fatal(err)
	}
	if sStar <= sNobody {
		t.Fatalf("halo effect missing: star %v <= nobody %v", sStar, sNobody)
	}
	// But even the star cannot reach expert-level scores off-domain.
	if sStar > 4 {
		t.Fatalf("off-domain star scored %v, halo too strong", sStar)
	}
}

func TestPanelSizeDefaultsToTen(t *testing.T) {
	p := Panel{}.withDefaults()
	if p.Judges != 10 {
		t.Fatalf("default judges = %d, want 10 (as in the paper)", p.Judges)
	}
	if p.HaloWeight+p.DomainWeight != 1 {
		t.Fatalf("weights must sum to 1: %v + %v", p.HaloWeight, p.DomainWeight)
	}
}
