// Package userstudy simulates the paper's evaluation protocol: "we invite
// 10 users ... who compare the recommendation performance of top 3
// influential bloggers ... and ask users to score them from 1 to 5
// according to their understanding of a specific application scenario"
// (e.g. picking a blogger for a Nike advertisement).
//
// Human judges are replaced by synthetic ones with an explicit utility
// model: a judge values a blogger for a domain-specific task by a mix of
// the blogger's true domain expertise (planted by the generator) and a
// smaller "halo" credit for being generally prominent, plus per-judge
// noise. This reproduces the mechanism behind Table I — judges reward
// domain fit that general link-based rankings cannot see — with a
// measurable, reproducible panel.
package userstudy

import (
	"fmt"
	"math/rand"

	"mass/internal/blog"
	"mass/internal/synth"
)

// Panel is a reproducible set of synthetic judges.
type Panel struct {
	// Judges is the panel size. The paper used 10.
	Judges int
	// Seed drives per-judge bias and noise.
	Seed int64
	// HaloWeight is the credit a judge gives to general prominence even
	// off-domain; DomainWeight is the credit for true domain expertise.
	// They should sum to 1. Defaults: 0.45 / 0.55.
	HaloWeight, DomainWeight float64
	// NoiseAmplitude is the half-width of per-(judge,blogger) uniform
	// noise on the 1–5 scale. Default 0.5.
	NoiseAmplitude float64
}

// withDefaults fills zero fields with the calibrated defaults.
func (p Panel) withDefaults() Panel {
	if p.Judges == 0 {
		p.Judges = 10
	}
	if p.HaloWeight == 0 && p.DomainWeight == 0 {
		p.HaloWeight, p.DomainWeight = 0.45, 0.55
	}
	if p.NoiseAmplitude == 0 {
		p.NoiseAmplitude = 0.5
	}
	return p
}

// Score runs the panel over a ranked list of bloggers for a target domain
// and returns the average 1–5 applicability score, exactly as a Table I
// cell is computed (average over judges and over the ranked bloggers).
func (p Panel) Score(ranking []blog.BloggerID, domain string, gt *synth.GroundTruth) (float64, error) {
	p = p.withDefaults()
	if len(ranking) == 0 {
		return 0, fmt.Errorf("userstudy: empty ranking")
	}
	if gt == nil {
		return 0, fmt.Errorf("userstudy: ground truth required")
	}
	maxGeneral, maxDomain := normalizers(gt, domain)
	rng := rand.New(rand.NewSource(p.Seed))
	// Per-judge systematic bias (some judges score harsher).
	biases := make([]float64, p.Judges)
	for j := range biases {
		biases[j] = (rng.Float64() - 0.5) * 0.4
	}
	var total float64
	n := 0
	for _, b := range ranking {
		u := p.utility(b, domain, gt, maxGeneral, maxDomain)
		for j := 0; j < p.Judges; j++ {
			noise := (rng.Float64()*2 - 1) * p.NoiseAmplitude
			s := 1 + 4*u + biases[j] + noise
			if s < 1 {
				s = 1
			}
			if s > 5 {
				s = 5
			}
			total += s
			n++
		}
	}
	return total / float64(n), nil
}

// utility is the judge's value model in [0,1].
func (p Panel) utility(b blog.BloggerID, domain string, gt *synth.GroundTruth, maxGeneral, maxDomain float64) float64 {
	general := generalScore(gt, b)
	if maxGeneral > 0 {
		general /= maxGeneral
	}
	dom := gt.TrueScore(b, domain)
	if maxDomain > 0 {
		dom /= maxDomain
	}
	return p.HaloWeight*general + p.DomainWeight*dom
}

// generalScore is a blogger's overall prominence: activity × best
// expertise in any domain.
func generalScore(gt *synth.GroundTruth, b blog.BloggerID) float64 {
	best := 0.0
	for _, e := range gt.Expertise[b] {
		if e > best {
			best = e
		}
	}
	return best * gt.Activity[b]
}

// normalizers returns the corpus maxima used to scale utilities.
func normalizers(gt *synth.GroundTruth, domain string) (maxGeneral, maxDomain float64) {
	for b := range gt.Expertise {
		if g := generalScore(gt, b); g > maxGeneral {
			maxGeneral = g
		}
		if d := gt.TrueScore(b, domain); d > maxDomain {
			maxDomain = d
		}
	}
	return maxGeneral, maxDomain
}
