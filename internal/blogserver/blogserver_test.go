package blogserver

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mass/internal/blog"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(blog.Figure1Corpus())
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestIndexListsAllBloggers(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := get(t, ts.URL+"/spaces")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	lines := strings.Fields(body)
	if len(lines) != 9 {
		t.Fatalf("index lists %d bloggers, want 9", len(lines))
	}
	if !strings.Contains(body, "Amery") {
		t.Fatal("Amery missing from index")
	}
}

func TestSpacePageRoundTrip(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := get(t, ts.URL+"/space/Amery")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	page, err := ParsePage([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	if page.Blogger.ID != "Amery" {
		t.Fatalf("page blogger = %s", page.Blogger.ID)
	}
	if len(page.Posts) != 2 {
		t.Fatalf("Amery page has %d posts, want 2", len(page.Posts))
	}
	if len(page.Posts[0].Comments)+len(page.Posts[1].Comments) != 3 {
		t.Fatal("Amery's comments missing")
	}
	if len(page.Links) != 0 {
		t.Fatalf("Amery has no out-links, got %v", page.Links)
	}
	if len(page.Linkbacks) != 5 {
		t.Fatalf("Amery has 5 linkbacks, got %v", page.Linkbacks)
	}
	// Bob links to Amery.
	_, bobBody := get(t, ts.URL+"/space/Bob")
	bobPage, err := ParsePage([]byte(bobBody))
	if err != nil {
		t.Fatal(err)
	}
	if len(bobPage.Links) != 1 || bobPage.Links[0] != "Amery" {
		t.Fatalf("Bob links = %v, want [Amery]", bobPage.Links)
	}
}

func TestUnknownSpace404(t *testing.T) {
	_, ts := newTestServer(t)
	code, _ := get(t, ts.URL+"/space/Nobody")
	if code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", code)
	}
	code, _ = get(t, ts.URL+"/other")
	if code != http.StatusNotFound {
		t.Fatalf("unknown route status = %d, want 404", code)
	}
}

func TestFailEvery(t *testing.T) {
	s, ts := newTestServer(t)
	s.FailEvery = 2
	fails := 0
	for i := 0; i < 6; i++ {
		code, _ := get(t, ts.URL+"/space/Amery")
		if code == http.StatusServiceUnavailable {
			fails++
		}
	}
	if fails != 3 {
		t.Fatalf("FailEvery=2 over 6 requests gave %d failures, want 3", fails)
	}
	if s.Requests() != 6 {
		t.Fatalf("Requests() = %d, want 6", s.Requests())
	}
}

func TestParsePageErrors(t *testing.T) {
	if _, err := ParsePage([]byte("not xml at all")); err == nil {
		t.Fatal("garbage must fail")
	}
	if _, err := ParsePage([]byte("<space><blogger id=\"\"></blogger></space>")); err == nil {
		t.Fatal("empty blogger ID must fail")
	}
}
