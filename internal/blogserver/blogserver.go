// Package blogserver simulates the blog service MASS crawls (the paper
// used Microsoft MSN Spaces, which no longer exists). A Server exposes a
// corpus over HTTP with one XML page per blogger's space — profile,
// friends, posts with comments, and outgoing hyperlinks — which is exactly
// the information the paper's crawler extracted.
//
// The server can inject artificial latency and deterministic transient
// failures so crawler retry logic is exercised in tests.
package blogserver

import (
	"context"
	"encoding/xml"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"mass/internal/blog"
)

// Page is the XML document served for one blogger's space, and the schema
// the crawler parses. Friends, commenters and links are how new spaces are
// discovered.
type Page struct {
	XMLName xml.Name         `xml:"space"`
	Blogger blog.Blogger     `xml:"blogger"`
	Posts   []blog.Post      `xml:"posts>post"`
	Links   []blog.BloggerID `xml:"links>link"`
	// Linkbacks are the spaces linking here (MSN Spaces surfaced these as
	// "recent visitors"/trackbacks); they make the link graph discoverable
	// in both directions.
	Linkbacks []blog.BloggerID `xml:"linkbacks>link"`
}

// Server serves a corpus as a simulated blog site.
type Server struct {
	corpus *blog.Corpus
	mux    *http.ServeMux
	// Latency is added to every request (simulated network/server delay).
	Latency time.Duration
	// FailEvery makes every Nth request fail with HTTP 503 when > 0,
	// deterministically, to exercise crawler retries.
	FailEvery int64
	// CorruptEvery makes every Nth space page return truncated XML when
	// > 0 — a 200 response whose body cannot be parsed, the nastier
	// failure mode real crawls hit.
	CorruptEvery int64

	requests atomic.Int64
}

// New builds a server over the corpus. The corpus must be valid and must
// not be mutated while serving. Routes, registered as method+wildcard
// patterns:
//
//	GET /spaces            — newline-separated list of all blogger IDs
//	GET /space/{id}        — the blogger's Page as XML
func New(c *blog.Corpus) *Server {
	s := &Server{corpus: c, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /spaces", func(w http.ResponseWriter, r *http.Request) {
		s.serveIndex(w)
	})
	s.mux.HandleFunc("GET /space/{id}", func(w http.ResponseWriter, r *http.Request) {
		n, _ := r.Context().Value(requestNumKey{}).(int64)
		if s.CorruptEvery > 0 && n%s.CorruptEvery == 0 {
			w.Header().Set("Content-Type", "application/xml; charset=utf-8")
			fmt.Fprint(w, "<space><blogger id=") // truncated mid-attribute
			return
		}
		s.serveSpace(w, r.PathValue("id"))
	})
	return s
}

// requestNumKey carries the request's sequence number from the
// fault-injection layer to the route handlers, so CorruptEvery stays
// deterministic per request even under concurrent fetches.
type requestNumKey struct{}

// Requests reports how many requests have been served (including failures).
func (s *Server) Requests() int64 { return s.requests.Load() }

// ServeHTTP implements http.Handler: the fault-injection layer (latency,
// deterministic 503s) runs first, then the mux routes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := s.requests.Add(1)
	if s.Latency > 0 {
		time.Sleep(s.Latency)
	}
	if s.FailEvery > 0 && n%s.FailEvery == 0 {
		http.Error(w, "transient overload", http.StatusServiceUnavailable)
		return
	}
	s.mux.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), requestNumKey{}, n)))
}

func (s *Server) serveIndex(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, id := range s.corpus.BloggerIDs() {
		fmt.Fprintln(w, id)
	}
}

func (s *Server) serveSpace(w http.ResponseWriter, id string) {
	b, ok := s.corpus.Bloggers[blog.BloggerID(id)]
	if !ok {
		http.NotFound(w, nil)
		return
	}
	page := Page{Blogger: *b}
	for _, pid := range s.corpus.PostsBy(b.ID) {
		page.Posts = append(page.Posts, *s.corpus.Posts[pid])
	}
	page.Links = append(page.Links, s.corpus.OutLinks(b.ID)...)
	page.Linkbacks = append(page.Linkbacks, s.corpus.InLinks(b.ID)...)
	w.Header().Set("Content-Type", "application/xml; charset=utf-8")
	fmt.Fprint(w, xml.Header)
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(page); err != nil {
		// Headers are already written; nothing more to do than log-level
		// abandon. Tests catch schema regressions.
		return
	}
	enc.Flush()
}

// ParsePage decodes a Page from XML bytes; the crawler's parse step.
func ParsePage(data []byte) (*Page, error) {
	var p Page
	if err := xml.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("blogserver: parse page: %w", err)
	}
	if p.Blogger.ID == "" {
		return nil, fmt.Errorf("blogserver: page has no blogger ID")
	}
	return &p, nil
}
