// Package experiments regenerates every table and figure of the paper's
// evaluation, plus the extended ablation and performance studies listed in
// DESIGN.md. Each Experiment* function is deterministic for a fixed
// Config and returns a structured result with a Format method that prints
// the same rows the paper reports.
//
// Index (see DESIGN.md §4):
//
//	Table I   — ExperimentTable1       (user study: General vs Live Index vs Domain-Specific)
//	Figure 1  — ExperimentFigure1      (sample influence graph walkthrough)
//	Figure 2  — ExperimentFigure2      (crawler→analyzer→UI pipeline)
//	Figure 3  — ExperimentFigure3      (advertisement input function)
//	Figure 4  — ExperimentFigure4      (post-reply network visualization)
//	X1/X2     — ExperimentAlphaSweep, ExperimentBetaSweep
//	X3        — ExperimentFacetAblation
//	X4        — ExperimentClassifier
//	X5        — ExperimentConvergence
//	X6        — ExperimentScalability
//	X7        — (crawler worker scaling lives in bench_test.go)
package experiments

import (
	"fmt"
	"io"
	"strings"

	"mass/internal/blog"
	"mass/internal/classify"
	"mass/internal/influence"
	"mass/internal/synth"
)

// Config sizes the synthetic workload. The paper crawled ~3000 spaces and
// ~40000 posts; the default here is a scaled-down corpus that preserves
// the distributional shape and runs in seconds. Use PaperScale for the
// full-size run.
type Config struct {
	// Seed drives corpus generation and the judge panel.
	Seed int64
	// Bloggers and Posts size the corpus. Defaults 300 / 3000.
	Bloggers, Posts int
	// Judges is the user-study panel size. Default 10 (as in the paper).
	Judges int
	// K is the ranking depth for the user study. Default 3 (as in the paper).
	K int
	// TrainPerDomain sizes classifier training. Default 30.
	TrainPerDomain int
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 2010 // ICDE 2010
	}
	if c.Bloggers == 0 {
		c.Bloggers = 300
	}
	if c.Posts == 0 {
		c.Posts = 3000
	}
	if c.Judges == 0 {
		c.Judges = 10
	}
	if c.K == 0 {
		c.K = 3
	}
	if c.TrainPerDomain == 0 {
		c.TrainPerDomain = 30
	}
	return c
}

// PaperScale returns the full-size configuration matching the paper's
// crawl: ~3000 bloggers, ~40000 posts.
func PaperScale() Config {
	return Config{Bloggers: 3000, Posts: 40000}.withDefaults()
}

// workload bundles the shared setup: corpus, ground truth, classifier and
// a completed MASS analysis.
type workload struct {
	cfg    Config
	corpus *blog.Corpus
	gt     *synth.GroundTruth
	nb     classify.Classifier
	res    *influence.Result
}

// buildWorkload generates and analyzes the standard corpus.
func buildWorkload(cfg Config) (*workload, error) {
	cfg = cfg.withDefaults()
	corpus, gt, err := synth.Generate(synth.Config{
		Seed:     cfg.Seed,
		Bloggers: cfg.Bloggers,
		Posts:    cfg.Posts,
	})
	if err != nil {
		return nil, err
	}
	nb, err := classify.TrainNaiveBayes(
		synth.TrainingExamples(nil, cfg.TrainPerDomain, cfg.Seed+1))
	if err != nil {
		return nil, err
	}
	an, err := influence.NewAnalyzer(influence.Config{}, nb)
	if err != nil {
		return nil, err
	}
	res, err := an.Analyze(corpus)
	if err != nil {
		return nil, err
	}
	return &workload{cfg: cfg, corpus: corpus, gt: gt, nb: nb, res: res}, nil
}

// writeTable renders rows as a fixed-width table.
func writeTable(w io.Writer, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = pad(cell, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
