package experiments

import (
	"fmt"
	"io"
	"time"

	"mass/internal/classify"
	"mass/internal/influence"
	"mass/internal/synth"
	"mass/internal/userstudy"
)

// panelFor builds the standard judge panel for a config.
func panelFor(cfg Config) userstudy.Panel {
	return userstudy.Panel{Judges: cfg.Judges, Seed: cfg.Seed + 7}
}

// ConvergencePoint records solver behaviour at one tolerance.
type ConvergencePoint struct {
	Epsilon    float64
	Iterations int
	Converged  bool
}

// ConvergenceResult is the X5 study.
type ConvergenceResult struct {
	Points []ConvergencePoint
}

// ExperimentConvergence (X5) measures how many Jacobi sweeps the influence
// fixed point needs as the tolerance tightens. The contraction argument in
// the influence package predicts geometric convergence — iterations should
// grow linearly in -log ε.
func ExperimentConvergence(cfg Config) (*ConvergenceResult, error) {
	cfg = cfg.withDefaults()
	corpus, _, err := synth.Generate(synth.Config{
		Seed: cfg.Seed, Bloggers: cfg.Bloggers, Posts: cfg.Posts,
	})
	if err != nil {
		return nil, err
	}
	out := &ConvergenceResult{}
	for _, eps := range []float64{1e-3, 1e-6, 1e-9, 1e-12} {
		an, err := influence.NewAnalyzer(influence.Config{Epsilon: eps, MaxIter: 1000}, nil)
		if err != nil {
			return nil, err
		}
		ir, err := an.Analyze(corpus)
		if err != nil {
			return nil, err
		}
		out.Points = append(out.Points, ConvergencePoint{
			Epsilon:    eps,
			Iterations: ir.Iterations,
			Converged:  ir.Converged,
		})
	}
	return out, nil
}

// Format renders the convergence table.
func (r *ConvergenceResult) Format(w io.Writer) {
	fmt.Fprintln(w, "Solver convergence (X5)")
	var rows [][]string
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%.0e", p.Epsilon),
			fmt.Sprintf("%d", p.Iterations),
			fmt.Sprintf("%v", p.Converged),
		})
	}
	writeTable(w, []string{"epsilon", "iterations", "converged"}, rows)
}

// ScalePoint is one corpus size and its analysis cost.
type ScalePoint struct {
	Bloggers, Posts int
	Comments        int
	AnalyzeTime     time.Duration
	Iterations      int
}

// ScalabilityResult is the X6 study.
type ScalabilityResult struct {
	Points []ScalePoint
}

// ExperimentScalability (X6) doubles the corpus size repeatedly and times
// the full analysis (classification + fixed point + domain aggregation).
// The solver is linear in posts+comments per sweep, so wall time should
// scale roughly linearly.
func ExperimentScalability(cfg Config, sizes []int) (*ScalabilityResult, error) {
	cfg = cfg.withDefaults()
	if len(sizes) == 0 {
		sizes = []int{100, 200, 400, 800}
	}
	nb, err := classify.TrainNaiveBayes(
		synth.TrainingExamples(nil, cfg.TrainPerDomain, cfg.Seed+1))
	if err != nil {
		return nil, err
	}
	out := &ScalabilityResult{}
	for _, n := range sizes {
		corpus, _, err := synth.Generate(synth.Config{
			Seed: cfg.Seed, Bloggers: n, Posts: n * 10,
		})
		if err != nil {
			return nil, err
		}
		comments := 0
		for _, pid := range corpus.PostIDs() {
			comments += len(corpus.Posts[pid].Comments)
		}
		an, err := influence.NewAnalyzer(influence.Config{}, nb)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		ir, err := an.Analyze(corpus)
		if err != nil {
			return nil, err
		}
		out.Points = append(out.Points, ScalePoint{
			Bloggers:    n,
			Posts:       len(corpus.Posts),
			Comments:    comments,
			AnalyzeTime: time.Since(t0),
			Iterations:  ir.Iterations,
		})
	}
	return out, nil
}

// Format renders the scalability table.
func (r *ScalabilityResult) Format(w io.Writer) {
	fmt.Fprintln(w, "Analyzer scalability (X6)")
	var rows [][]string
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Bloggers),
			fmt.Sprintf("%d", p.Posts),
			fmt.Sprintf("%d", p.Comments),
			p.AnalyzeTime.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", p.Iterations),
		})
	}
	writeTable(w, []string{"bloggers", "posts", "comments", "analyze time", "iters"}, rows)
}
