package experiments

import (
	"fmt"
	"io"
	"time"

	"mass/internal/influence"
	"mass/internal/lexicon"
	"mass/internal/taginterest"
	"mass/internal/topic"
	"mass/internal/trend"
)

// ExtensionsResult is the X9 study: the paper-mentioned alternatives and
// extensions exercised on one corpus — automatic topic discovery instead
// of predefined domains, tag-based social interest discovery ([6]), and
// time-decayed influence.
type ExtensionsResult struct {
	// TopicPurity is the purity of unsupervised k-means topics against
	// the planted post domains.
	TopicPurity float64
	// TopicIterations is how many Lloyd sweeps the winning restart used.
	TopicIterations int
	// TagGroups is the number of interest groups tag discovery found.
	TagGroups int
	// TagLeaderAligned reports whether the largest tag group's leading
	// blogger writes in a domain whose vocabulary contains one of the
	// group's top tags.
	TagLeaderAligned bool
	// DecayTopChanged reports whether the overall top-3 changes when a
	// 30-day half-life is applied (recency matters).
	DecayTopChanged bool
	// DecayMassRetained is the ratio of total decayed AP to undecayed AP.
	DecayMassRetained float64
	// TrendDomains is how many domains got a fitted trend series, and
	// TopEmerging is the blogger whose influence is most concentrated in
	// the recent half of the timeline.
	TrendDomains int
	TopEmerging  string
}

// ExperimentExtensions (X9) runs the three optional mechanisms end to end.
func ExperimentExtensions(cfg Config) (*ExtensionsResult, error) {
	w, err := buildWorkload(cfg)
	if err != nil {
		return nil, err
	}
	out := &ExtensionsResult{}

	// --- Automatic topic discovery (paper §II, reference [6] route). ---
	var docs, labels []string
	for _, pid := range w.corpus.PostIDs() {
		p := w.corpus.Posts[pid]
		docs = append(docs, p.Body)
		labels = append(labels, p.TrueDomain)
	}
	model, err := topic.Discover(docs, topic.Config{K: 10, Seed: w.cfg.Seed})
	if err != nil {
		return nil, err
	}
	out.TopicIterations = model.Iterations
	purity, err := model.Purity(labels)
	if err != nil {
		return nil, err
	}
	out.TopicPurity = purity

	// --- Tag-based social interest discovery. ---
	groups, err := taginterest.Discover(w.corpus, taginterest.Config{MinSupport: 3, TopBloggers: 3})
	if err != nil {
		return nil, err
	}
	out.TagGroups = len(groups)
	if len(groups) > 0 && len(groups[0].Bloggers) > 0 {
		leader := groups[0].Bloggers[0].ID
		primary := w.gt.PrimaryDomain[leader]
		vocab := map[string]bool{}
		for _, word := range lexicon.Vocabulary(primary) {
			vocab[word] = true
		}
		for _, tag := range groups[0].Tags {
			if vocab[tag] {
				out.TagLeaderAligned = true
				break
			}
		}
	}

	// --- Time-decayed influence. ---
	an, err := influence.NewAnalyzer(influence.Config{}, w.nb)
	if err != nil {
		return nil, err
	}
	decayed, err := an.AnalyzeDecayed(w.corpus, influence.DecayConfig{
		HalfLife: 30 * 24 * time.Hour,
	})
	if err != nil {
		return nil, err
	}
	plainTop := w.res.TopKGeneral(3)
	decayTop := decayed.TopKGeneral(3)
	for i := range plainTop {
		if plainTop[i] != decayTop[i] {
			out.DecayTopChanged = true
			break
		}
	}
	var apPlain, apDecayed float64
	for b := range w.res.AP {
		apPlain += w.res.AP[b]
		apDecayed += decayed.AP[b]
	}
	if apPlain > 0 {
		out.DecayMassRetained = apDecayed / apPlain
	}

	// --- Trend analysis over the corpus timeline. ---
	rep, err := trend.Analyze(w.corpus, w.res, trend.Config{Buckets: 8, TopEmerging: 1})
	if err != nil {
		return nil, err
	}
	out.TrendDomains = len(rep.DomainSeries)
	if len(rep.Emerging) > 0 {
		out.TopEmerging = string(rep.Emerging[0].ID)
	}
	return out, nil
}

// Format renders the extensions report.
func (r *ExtensionsResult) Format(w io.Writer) {
	fmt.Fprintln(w, "Extensions (X9) — paper-mentioned alternatives exercised")
	writeTable(w, []string{"Mechanism", "Result"}, [][]string{
		{"topic discovery: purity vs planted domains", f3(r.TopicPurity)},
		{"topic discovery: Lloyd iterations", fmt.Sprintf("%d", r.TopicIterations)},
		{"tag interests: groups discovered", fmt.Sprintf("%d", r.TagGroups)},
		{"tag interests: leader aligned with group", fmt.Sprintf("%v", r.TagLeaderAligned)},
		{"time decay (30d half-life): top-3 changed", fmt.Sprintf("%v", r.DecayTopChanged)},
		{"time decay: AP mass retained", f3(r.DecayMassRetained)},
		{"trend: domains with fitted series", fmt.Sprintf("%d", r.TrendDomains)},
		{"trend: top emerging blogger", r.TopEmerging},
	})
}
