package experiments

import (
	"fmt"
	"io"

	"mass/internal/classify"
	"mass/internal/influence"
	"mass/internal/lexicon"
	"mass/internal/rank"
	"mass/internal/synth"
)

// rankingQuality scores a MASS configuration against the planted ground
// truth: the mean NDCG@10 over all ten domains, where each blogger's gain
// in a domain is their true (planted) domain influence.
func rankingQuality(res *influence.Result, gt *synth.GroundTruth) float64 {
	var total float64
	n := 0
	for _, domain := range lexicon.Domains() {
		gains := map[string]float64{}
		for id := range gt.Expertise {
			if s := gt.TrueScore(id, domain); s > 0 {
				gains[string(id)] = s
			}
		}
		if len(gains) == 0 {
			continue
		}
		ranking := make([]string, 0, 10)
		for _, id := range res.TopKDomain(domain, 10) {
			ranking = append(ranking, string(id))
		}
		total += rank.NDCGAtK(ranking, gains, 10)
		n++
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// rankCorrelation is the discriminative companion to rankingQuality: the
// mean Spearman ρ between the full MASS domain ranking and the planted
// truth ordering, averaged over domains. Top-k NDCG saturates when the
// synthetic signals are redundant; full-ranking correlation still moves.
func rankCorrelation(res *influence.Result, gt *synth.GroundTruth) float64 {
	var total float64
	n := 0
	for _, domain := range lexicon.Domains() {
		truth := gt.TrueTopK(domain, len(gt.Expertise))
		if len(truth) < 2 {
			continue
		}
		truthIDs := make([]string, len(truth))
		for i, id := range truth {
			truthIDs[i] = string(id)
		}
		ranking := make([]string, 0, len(truth))
		for _, id := range res.TopKDomain(domain, len(gt.Expertise)) {
			ranking = append(ranking, string(id))
		}
		total += rank.SpearmanRho(truthIDs, ranking)
		n++
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// SweepPoint is one parameter setting and its ranking quality.
type SweepPoint struct {
	Value    float64
	NDCG     float64
	Spearman float64
	Iters    int
}

// SweepResult is a one-parameter sweep (X1: alpha, X2: beta).
type SweepResult struct {
	Param  string
	Points []SweepPoint
}

// ExperimentAlphaSweep (X1) sweeps the AP-vs-GL mixing weight α of Eq. 1
// and reports ranking quality against planted truth at each setting. The
// paper fixes α = 0.5; the sweep shows how sensitive that choice is.
func ExperimentAlphaSweep(cfg Config) (*SweepResult, error) {
	return sweep(cfg, "alpha", []float64{0, 0.25, 0.5, 0.75, 1},
		func(v float64) influence.Config {
			c := influence.Config{Alpha: v}
			if v == 0 {
				c.Alpha = influence.ExplicitZero
			}
			return c
		})
}

// ExperimentBetaSweep (X2) sweeps the quality-vs-comments weight β of
// Eq. 2 (the paper sets 0.6 "according to empirical study").
func ExperimentBetaSweep(cfg Config) (*SweepResult, error) {
	return sweep(cfg, "beta", []float64{0, 0.2, 0.4, 0.6, 0.8, 1},
		func(v float64) influence.Config {
			c := influence.Config{Beta: v}
			if v == 0 {
				c.Beta = influence.ExplicitZero
			}
			return c
		})
}

func sweep(cfg Config, param string, values []float64, build func(float64) influence.Config) (*SweepResult, error) {
	cfg = cfg.withDefaults()
	corpus, gt, err := synth.Generate(synth.Config{
		Seed: cfg.Seed, Bloggers: cfg.Bloggers, Posts: cfg.Posts,
	})
	if err != nil {
		return nil, err
	}
	nb, err := classify.TrainNaiveBayes(
		synth.TrainingExamples(nil, cfg.TrainPerDomain, cfg.Seed+1))
	if err != nil {
		return nil, err
	}
	res := &SweepResult{Param: param}
	for _, v := range values {
		an, err := influence.NewAnalyzer(build(v), nb)
		if err != nil {
			return nil, err
		}
		ir, err := an.Analyze(corpus)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, SweepPoint{
			Value:    v,
			NDCG:     rankingQuality(ir, gt),
			Spearman: rankCorrelation(ir, gt),
			Iters:    ir.Iterations,
		})
	}
	return res, nil
}

// Format renders the sweep as a table.
func (r *SweepResult) Format(w io.Writer) {
	fmt.Fprintf(w, "Parameter sweep — %s (ranking quality vs planted truth)\n", r.Param)
	var rows [][]string
	for _, p := range r.Points {
		rows = append(rows, []string{f2(p.Value), f3(p.NDCG), f3(p.Spearman), fmt.Sprintf("%d", p.Iters)})
	}
	writeTable(w, []string{r.Param, "mean NDCG@10", "Spearman ρ", "solver iters"}, rows)
}

// AblationRow is one model variant and its quality.
type AblationRow struct {
	Variant  string
	NDCG     float64
	Spearman float64
	// Table1Style is the simulated-judge score of the variant's top-3 in
	// the Table I domains, averaged — connects the ablation back to the
	// paper's own metric.
	Table1Style float64
}

// AblationResult is the X3 facet ablation.
type AblationResult struct {
	Rows []AblationRow
}

// ExperimentFacetAblation (X3) removes each MASS facet in turn — the
// sentiment factor, the citation (commenter-influence) weighting, the
// novelty penalty, and the link-authority term — and measures how ranking
// quality degrades. This defends the multi-facet design: each facet should
// contribute.
func ExperimentFacetAblation(cfg Config) (*AblationResult, error) {
	cfg = cfg.withDefaults()
	corpus, gt, err := synth.Generate(synth.Config{
		Seed: cfg.Seed, Bloggers: cfg.Bloggers, Posts: cfg.Posts,
	})
	if err != nil {
		return nil, err
	}
	nb, err := classify.TrainNaiveBayes(
		synth.TrainingExamples(nil, cfg.TrainPerDomain, cfg.Seed+1))
	if err != nil {
		return nil, err
	}
	variants := []struct {
		name string
		cfg  influence.Config
	}{
		{"full MASS", influence.Config{}},
		{"- sentiment", influence.Config{IgnoreSentiment: true}},
		{"- citation", influence.Config{IgnoreCitation: true}},
		{"- novelty", influence.Config{IgnoreNovelty: true}},
		{"- authority", influence.Config{IgnoreAuthority: true}},
	}
	out := &AblationResult{}
	for _, v := range variants {
		an, err := influence.NewAnalyzer(v.cfg, nb)
		if err != nil {
			return nil, err
		}
		ir, err := an.Analyze(corpus)
		if err != nil {
			return nil, err
		}
		t1, err := table1Style(ir, gt, cfg)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, AblationRow{
			Variant:     v.name,
			NDCG:        rankingQuality(ir, gt),
			Spearman:    rankCorrelation(ir, gt),
			Table1Style: t1,
		})
	}
	return out, nil
}

// table1Style averages the judge-panel score of the result's top-k over
// the Table I domains.
func table1Style(ir *influence.Result, gt *synth.GroundTruth, cfg Config) (float64, error) {
	panel := panelFor(cfg)
	var total float64
	for _, d := range Table1Domains {
		top := ir.TopKDomain(d, cfg.K)
		if len(top) == 0 {
			continue
		}
		s, err := panel.Score(top, d, gt)
		if err != nil {
			return 0, err
		}
		total += s
	}
	return total / float64(len(Table1Domains)), nil
}

// Format renders the ablation table.
func (r *AblationResult) Format(w io.Writer) {
	fmt.Fprintln(w, "Facet ablation (X3) — drop one facet at a time")
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Variant, f3(row.NDCG), f3(row.Spearman), f2(row.Table1Style)})
	}
	writeTable(w, []string{"variant", "mean NDCG@10", "Spearman ρ", "judge score (T1 domains)"}, rows)
}

// ClassifierResult is the X4 classifier comparison.
type ClassifierResult struct {
	// PostAccuracy is accuracy against the corpus posts' planted domains.
	PostAccuracy map[string]float64
	// CVAccuracy is mean 5-fold cross-validation accuracy on the training
	// snippets.
	CVAccuracy map[string]float64
}

// ExperimentClassifier (X4) compares the naive Bayes post analyzer with
// the pluggable TF-IDF centroid alternative, on both cross-validation and
// real (synthetic-corpus) posts.
func ExperimentClassifier(cfg Config) (*ClassifierResult, error) {
	cfg = cfg.withDefaults()
	corpus, _, err := synth.Generate(synth.Config{
		Seed: cfg.Seed, Bloggers: cfg.Bloggers, Posts: cfg.Posts,
	})
	if err != nil {
		return nil, err
	}
	train := synth.TrainingExamples(nil, cfg.TrainPerDomain, cfg.Seed+1)
	var test []classify.Example
	for _, pid := range corpus.PostIDs() {
		p := corpus.Posts[pid]
		test = append(test, classify.Example{Text: p.Body, Label: p.TrueDomain})
	}
	res := &ClassifierResult{
		PostAccuracy: map[string]float64{},
		CVAccuracy:   map[string]float64{},
	}
	models := map[string]func([]classify.Example) (classify.Classifier, error){
		"naive Bayes": func(ex []classify.Example) (classify.Classifier, error) {
			return classify.TrainNaiveBayes(ex)
		},
		"naive Bayes+bigrams": func(ex []classify.Example) (classify.Classifier, error) {
			return classify.TrainNaiveBayesBigrams(ex)
		},
		"TF-IDF centroid": func(ex []classify.Example) (classify.Classifier, error) {
			return classify.TrainCentroid(ex)
		},
	}
	for name, trainFn := range models {
		cl, err := trainFn(train)
		if err != nil {
			return nil, err
		}
		res.PostAccuracy[name] = classify.Accuracy(cl, test)
		accs, err := classify.CrossValidate(train, 5, trainFn)
		if err != nil {
			return nil, err
		}
		var mean float64
		for _, a := range accs {
			mean += a
		}
		res.CVAccuracy[name] = mean / float64(len(accs))
	}
	return res, nil
}

// Format renders the classifier comparison.
func (r *ClassifierResult) Format(w io.Writer) {
	fmt.Fprintln(w, "Classifier comparison (X4)")
	var rows [][]string
	for _, name := range []string{"naive Bayes", "naive Bayes+bigrams", "TF-IDF centroid"} {
		rows = append(rows, []string{name, f3(r.PostAccuracy[name]), f3(r.CVAccuracy[name])})
	}
	writeTable(w, []string{"model", "post accuracy", "5-fold CV accuracy"}, rows)
}
