package experiments

import (
	"fmt"
	"io"

	"mass/internal/baseline"
	"mass/internal/blog"
	"mass/internal/lexicon"
	"mass/internal/rank"
)

// OverlapRow quantifies, for one domain, how different the MASS
// domain-specific top-k is from the global rankings — the paper's central
// argument made measurable: if the lists were similar, domain-specific
// mining would be pointless.
type OverlapRow struct {
	Domain string
	// VsGeneral and VsLive are overlap@k between the domain list and the
	// General / Live Index lists.
	VsGeneral, VsLive float64
	// RBOGeneral is the top-weighted rank-biased overlap (p = 0.9)
	// against the General list.
	RBOGeneral float64
	// TruthPrecision is precision@k of the domain list against the
	// planted true top-k of the domain.
	TruthPrecision float64
	// GeneralTruthPrecision is the same for the General list — what a
	// domain-blind system achieves on this domain.
	GeneralTruthPrecision float64
}

// OverlapResult is the X8 study.
type OverlapResult struct {
	K    int
	Rows []OverlapRow
}

// ExperimentSystemOverlap (X8) measures the divergence between the
// domain-specific rankings and the global baselines across all ten
// domains, plus each list's precision against planted truth.
func ExperimentSystemOverlap(cfg Config) (*OverlapResult, error) {
	w, err := buildWorkload(cfg)
	if err != nil {
		return nil, err
	}
	cfg = w.cfg
	k := cfg.K

	generalScores, err := (baseline.General{}).Rank(w.corpus)
	if err != nil {
		return nil, err
	}
	liveScores, err := (baseline.LiveIndex{}).Rank(w.corpus)
	if err != nil {
		return nil, err
	}
	general := bloggerIDsToStrings(topIDs(generalScores, k))
	live := bloggerIDsToStrings(topIDs(liveScores, k))

	out := &OverlapResult{K: k}
	for _, domain := range lexicon.Domains() {
		ds := make([]string, 0, k)
		for _, id := range w.res.TopKDomain(domain, k) {
			ds = append(ds, string(id))
		}
		truth := map[string]bool{}
		for _, id := range w.gt.TrueTopK(domain, k) {
			truth[string(id)] = true
		}
		out.Rows = append(out.Rows, OverlapRow{
			Domain:                domain,
			VsGeneral:             rank.OverlapAtK(ds, general, k),
			VsLive:                rank.OverlapAtK(ds, live, k),
			RBOGeneral:            rank.RBO(ds, general, 0.9),
			TruthPrecision:        rank.PrecisionAtK(ds, truth, k),
			GeneralTruthPrecision: rank.PrecisionAtK(general, truth, k),
		})
	}
	return out, nil
}

// MeanTruthPrecision averages the domain lists' truth precision.
func (r *OverlapResult) MeanTruthPrecision() (ds, general float64) {
	for _, row := range r.Rows {
		ds += row.TruthPrecision
		general += row.GeneralTruthPrecision
	}
	n := float64(len(r.Rows))
	if n == 0 {
		return 0, 0
	}
	return ds / n, general / n
}

// Format renders the overlap table.
func (r *OverlapResult) Format(w io.Writer) {
	fmt.Fprintf(w, "System overlap (X8) — domain-specific top-%d vs global lists\n", r.K)
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Domain,
			f2(row.VsGeneral), f2(row.VsLive), f2(row.RBOGeneral),
			f2(row.TruthPrecision), f2(row.GeneralTruthPrecision),
		})
	}
	writeTable(w, []string{"domain", "overlap vs General", "vs Live", "RBO vs General",
		"P@k vs truth (DS)", "P@k vs truth (General)"}, rows)
	ds, gen := r.MeanTruthPrecision()
	fmt.Fprintf(w, "\nmean truth precision: Domain Specific %.2f vs General %.2f\n", ds, gen)
}

func bloggerIDsToStrings(ids []blog.BloggerID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = string(id)
	}
	return out
}
