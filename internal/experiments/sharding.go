package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"mass/internal/blog"
	"mass/internal/cluster"
	"mass/internal/core"
	"mass/internal/linkrank"
	"mass/internal/query"
	"mass/internal/synth"
)

// ShardPoint records cluster behaviour at one shard count.
type ShardPoint struct {
	Shards        int
	BoundaryEdges int
	// PageRankDiff is the max absolute difference between the sharded
	// global solve (per-shard solves + boundary residual correction) and
	// the single-engine solve over the same corpus.
	PageRankDiff float64
	// Fallback reports that the boundary residual exceeded the bound and
	// the global solve fell back to a merged dense solve.
	Fallback bool
	// FlushTime is the mean cost of folding a single-shard batch into a
	// fresh snapshot: only the owner shard re-analyzes, so this shrinks
	// with the shard count.
	FlushTime time.Duration
	// RoutedQuery is the mean latency of an author-pinned posts query,
	// which collapses to the owner shard (scans 1/N of the corpus).
	RoutedQuery time.Duration
	// ScatterQuery is the mean latency of a cross-shard scan + k-way
	// merge (same total work, plus merge overhead).
	ScatterQuery time.Duration
}

// ShardingResult is the X8 study.
type ShardingResult struct {
	Points []ShardPoint
}

// ExperimentSharding (X8) partitions one corpus across increasing shard
// counts and measures what sharding buys and what it costs: localized
// flushes and routed queries touch 1/N of the data (near-linear wins),
// scattered scans pay a merge overhead, and the boundary-corrected global
// PageRank must agree with the single-engine solve to solver tolerance.
func ExperimentSharding(cfg Config, shardCounts []int) (*ShardingResult, error) {
	cfg = cfg.withDefaults()
	if len(shardCounts) == 0 {
		shardCounts = []int{1, 2, 4, 8}
	}
	corpus, _, err := synth.Generate(synth.Config{
		Seed: cfg.Seed, Bloggers: cfg.Bloggers, Posts: cfg.Posts,
	})
	if err != nil {
		return nil, err
	}
	// Deterministic author rotation for the flush and routed-query probes.
	var authors []blog.BloggerID
	seen := map[blog.BloggerID]bool{}
	for _, pid := range corpus.PostIDs() {
		a := corpus.Posts[pid].Author
		if !seen[a] {
			seen[a] = true
			authors = append(authors, a)
		}
		if len(authors) == 16 {
			break
		}
	}
	if len(authors) == 0 {
		return nil, fmt.Errorf("sharding experiment: corpus has no posts")
	}

	// Single-engine reference solve for the PageRank agreement column.
	var baseIDs []string
	var baseScores []float64
	out := &ShardingResult{}
	for _, n := range shardCounts {
		cl, err := cluster.New(corpus, cluster.Options{
			Shards: n,
			Engine: core.EngineOptions{FlushEvery: 1 << 20, FlushInterval: time.Hour},
		})
		if err != nil {
			return nil, err
		}
		p := ShardPoint{Shards: n, BoundaryEdges: cl.BoundaryEdges()}

		// Global PageRank agreement, measured on the pristine corpus.
		gr, err := cl.GlobalPageRank(linkrank.Options{})
		if err != nil {
			cl.Close()
			return nil, err
		}
		if baseIDs == nil {
			baseIDs, baseScores = gr.IDs, gr.Scores
		} else {
			base := make(map[string]float64, len(baseIDs))
			for i, id := range baseIDs {
				base[id] = baseScores[i]
			}
			for i, id := range gr.IDs {
				if d := gr.Scores[i] - base[id]; d > p.PageRankDiff {
					p.PageRankDiff = d
				} else if -d > p.PageRankDiff {
					p.PageRankDiff = -d
				}
			}
		}
		p.Fallback = gr.Fallback

		// Localized flush: one new post, one shard re-analyzes.
		t0 := time.Now()
		for i, a := range authors {
			err := cl.AddBatch(core.Batch{Posts: []*blog.Post{{
				ID:     blog.PostID(fmt.Sprintf("xshard-%d-%d", n, i)),
				Author: a,
				Title:  "flush probe",
				Body:   "a probe post about markets and playoffs to fold in",
				Posted: time.Unix(1260000000+int64(i), 0),
			}}})
			if err == nil {
				err = cl.Shard(cl.Owner(a)).Refresh(context.Background())
			}
			if err != nil {
				cl.Close()
				return nil, err
			}
		}
		p.FlushTime = time.Since(t0) / time.Duration(len(authors))

		// Routed vs scattered reads on the settled view. The offsets and
		// authors rotate so per-snapshot query memoization cannot answer
		// from cache.
		v := cl.View()
		t0 = time.Now()
		for _, a := range authors {
			q := query.Posts().
				Where(query.F(query.FieldAuthor).Is(string(a))).
				OrderBy(query.Desc(query.FieldPosted)).Limit(20).Build()
			if _, _, err := cl.Query(v, q); err != nil {
				cl.Close()
				return nil, err
			}
		}
		p.RoutedQuery = time.Since(t0) / time.Duration(len(authors))
		t0 = time.Now()
		for i := range authors {
			q := query.Posts().
				OrderBy(query.Desc(query.FieldPosted)).
				Limit(20).Offset(i).Build()
			if _, _, err := cl.Query(v, q); err != nil {
				cl.Close()
				return nil, err
			}
		}
		p.ScatterQuery = time.Since(t0) / time.Duration(len(authors))

		cl.Close()
		out.Points = append(out.Points, p)
	}
	return out, nil
}

// Format renders the sharding table.
func (r *ShardingResult) Format(w io.Writer) {
	fmt.Fprintln(w, "Sharded cluster scaling (X8)")
	var rows [][]string
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Shards),
			fmt.Sprintf("%d", p.BoundaryEdges),
			fmt.Sprintf("%.2e", p.PageRankDiff),
			fmt.Sprintf("%v", p.Fallback),
			p.FlushTime.Round(time.Microsecond).String(),
			p.RoutedQuery.Round(time.Microsecond).String(),
			p.ScatterQuery.Round(time.Microsecond).String(),
		})
	}
	writeTable(w, []string{"shards", "boundary", "pagerank diff", "fallback",
		"flush", "routed query", "scatter query"}, rows)
}

// WriteCSV emits the sharding series.
func (r *ShardingResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "shards,boundary_edges,pagerank_maxdiff,fallback,flush_ns,routed_query_ns,scatter_query_ns"); err != nil {
		return err
	}
	for _, p := range r.Points {
		if _, err := fmt.Fprintf(w, "%d,%d,%g,%v,%d,%d,%d\n",
			p.Shards, p.BoundaryEdges, p.PageRankDiff, p.Fallback,
			p.FlushTime.Nanoseconds(), p.RoutedQuery.Nanoseconds(), p.ScatterQuery.Nanoseconds()); err != nil {
			return err
		}
	}
	return nil
}
