package experiments

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"mass/internal/advert"
	"mass/internal/blog"
	"mass/internal/blogserver"
	"mass/internal/classify"
	"mass/internal/core"
	"mass/internal/crawler"
	"mass/internal/influence"
	"mass/internal/lexicon"
	"mass/internal/synth"
	"mass/internal/viz"
	"mass/internal/xmlstore"
)

// ---------------------------------------------------------------- Figure 1

// Figure1Result is the walkthrough of the paper's sample influence graph.
type Figure1Result struct {
	BloggerScores map[blog.BloggerID]float64
	PostScores    map[blog.PostID]float64
	Top3          []blog.BloggerID
	AmeryDomains  map[string]float64
	Converged     bool
	Iterations    int
}

// ExperimentFigure1 analyzes the exact Figure 1 corpus (Amery, Bob, Cary,
// …) and reports the scores the model assigns, demonstrating the
// domain-specific decomposition of Amery's influence into CS and Econ.
func ExperimentFigure1(cfg Config) (*Figure1Result, error) {
	cfg = cfg.withDefaults()
	c := blog.Figure1Corpus()
	nb, err := classify.TrainNaiveBayes(
		synth.TrainingExamples(nil, cfg.TrainPerDomain, cfg.Seed+1))
	if err != nil {
		return nil, err
	}
	an, err := influence.NewAnalyzer(influence.Config{}, nb)
	if err != nil {
		return nil, err
	}
	res, err := an.Analyze(c)
	if err != nil {
		return nil, err
	}
	return &Figure1Result{
		BloggerScores: res.BloggerScores,
		PostScores:    res.PostScores,
		Top3:          res.TopKGeneral(3),
		AmeryDomains:  res.DomainVector("Amery"),
		Converged:     res.Converged,
		Iterations:    res.Iterations,
	}, nil
}

// Format renders the walkthrough.
func (r *Figure1Result) Format(w io.Writer) {
	fmt.Fprintln(w, "Figure 1 — sample influence graph walkthrough")
	fmt.Fprintf(w, "(converged=%v after %d iterations)\n\n", r.Converged, r.Iterations)
	var rows [][]string
	for _, id := range []blog.BloggerID{"Amery", "Bob", "Cary", "Dolly", "Eddie", "Helen", "Jane", "Leo", "Michael"} {
		rows = append(rows, []string{string(id), f3(r.BloggerScores[id])})
	}
	writeTable(w, []string{"Blogger", "Inf(b)"}, rows)
	fmt.Fprintf(w, "\ntop-3 general: %v\n", r.Top3)
	fmt.Fprintf(w, "Amery's domain split: Computer=%.3f Economics=%.3f\n",
		r.AmeryDomains[lexicon.Computer], r.AmeryDomains[lexicon.Economics])
}

// ---------------------------------------------------------------- Figure 2

// Figure2Result reports the end-to-end architecture run: crawl over HTTP,
// XML persistence, reload, analysis consistency.
type Figure2Result struct {
	CrawlStats       crawler.Stats
	Bloggers, Posts  int
	XMLBytes         int
	ReloadConsistent bool
	AnalyzeTime      time.Duration
}

// ExperimentFigure2 exercises the Fig. 2 pipeline: Crawler Module (HTTP
// fetch of the simulated blog service) → Data Storage (XML snapshot +
// reload) → Analyzer Module (influence analysis) → a consistency check
// that the reloaded corpus analyzes identically.
func ExperimentFigure2(cfg Config) (*Figure2Result, error) {
	cfg = cfg.withDefaults()
	orig, _, err := synth.Generate(synth.Config{
		Seed: cfg.Seed, Bloggers: cfg.Bloggers, Posts: cfg.Posts,
	})
	if err != nil {
		return nil, err
	}
	ts := httptest.NewServer(blogserver.New(orig))
	defer ts.Close()

	seed := orig.BloggerIDs()[0]
	cr := crawler.New(crawler.Config{Workers: 8, Radius: 1000}, nil)
	crawled, stats, err := cr.Crawl(context.Background(), ts.URL, blog.BloggerID(seed))
	if err != nil {
		return nil, err
	}

	dir, err := os.MkdirTemp("", "massfig2")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "crawl.xml")
	if err := xmlstore.Save(path, crawled); err != nil {
		return nil, err
	}
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	reloaded, err := xmlstore.Load(path)
	if err != nil {
		return nil, err
	}

	t0 := time.Now()
	sys1, err := core.FromCorpus(crawled, core.Options{TrainingSeed: cfg.Seed + 1})
	if err != nil {
		return nil, err
	}
	analyzeTime := time.Since(t0)
	sys2, err := core.FromCorpus(reloaded, core.Options{TrainingSeed: cfg.Seed + 1})
	if err != nil {
		return nil, err
	}
	consistent := true
	a, b := sys1.TopInfluential(10), sys2.TopInfluential(10)
	for i := range a {
		if a[i] != b[i] {
			consistent = false
		}
	}
	return &Figure2Result{
		CrawlStats:       stats,
		Bloggers:         len(crawled.Bloggers),
		Posts:            len(crawled.Posts),
		XMLBytes:         int(info.Size()),
		ReloadConsistent: consistent,
		AnalyzeTime:      analyzeTime,
	}, nil
}

// Format renders the pipeline report.
func (r *Figure2Result) Format(w io.Writer) {
	fmt.Fprintln(w, "Figure 2 — system architecture pipeline (crawler → storage → analyzer)")
	writeTable(w, []string{"Stage", "Metric"}, [][]string{
		{"crawl: spaces fetched", fmt.Sprintf("%d", r.CrawlStats.Fetched)},
		{"crawl: failures", fmt.Sprintf("%d", r.CrawlStats.Failed)},
		{"crawl: elapsed", r.CrawlStats.Elapsed.Round(time.Millisecond).String()},
		{"corpus: bloggers", fmt.Sprintf("%d", r.Bloggers)},
		{"corpus: posts", fmt.Sprintf("%d", r.Posts)},
		{"storage: XML snapshot bytes", fmt.Sprintf("%d", r.XMLBytes)},
		{"analyzer: wall time", r.AnalyzeTime.Round(time.Millisecond).String()},
		{"reload consistency (top-10 equal)", fmt.Sprintf("%v", r.ReloadConsistent)},
	})
}

// ---------------------------------------------------------------- Figure 3

// Figure3Result reproduces the advertisement input function: both input
// modes of Fig. 3 on a Nike-style sports advertisement.
type Figure3Result struct {
	AdText         string
	MinedDomains   []string
	TextTop        []advert.Recommendation
	DropdownTop    []advert.Recommendation
	GeneralTop     []advert.Recommendation
	AgreementAt3   int // overlap between text mode and dropdown mode
	TargetsOnPoint int // text-mode targets with planted Sports expertise
}

// ExperimentFigure3 runs both Fig. 3 input modes — free ad text and the
// domain dropdown — and checks they agree on who to target.
func ExperimentFigure3(cfg Config) (*Figure3Result, error) {
	w, err := buildWorkload(cfg)
	if err != nil {
		return nil, err
	}
	cfg = w.cfg
	rec, err := advert.New(w.nb, w.res)
	if err != nil {
		return nil, err
	}
	adText := "Introducing the new running sneaker line: built for marathon " +
		"training, basketball playoffs and every athlete chasing a medal " +
		"this olympics season"
	res := &Figure3Result{
		AdText:       adText,
		MinedDomains: rec.TopDomains(adText, 2),
		TextTop:      rec.ForText(adText, cfg.K),
		DropdownTop:  rec.ForDomains([]string{lexicon.Sports}, cfg.K),
		GeneralTop:   rec.ForDomains(nil, cfg.K),
	}
	inDropdown := map[blog.BloggerID]bool{}
	for _, d := range res.DropdownTop {
		inDropdown[d.Blogger] = true
	}
	for _, t := range res.TextTop {
		if inDropdown[t.Blogger] {
			res.AgreementAt3++
		}
		if w.gt.Expertise[t.Blogger][lexicon.Sports] > 0 {
			res.TargetsOnPoint++
		}
	}
	return res, nil
}

// Format renders both input modes.
func (r *Figure3Result) Format(w io.Writer) {
	fmt.Fprintln(w, "Figure 3 — advertisement input function")
	fmt.Fprintf(w, "ad text: %q\nmined domains: %v\n\n", r.AdText, r.MinedDomains)
	var rows [][]string
	for i := range r.TextTop {
		row := []string{fmt.Sprintf("%d", i+1),
			string(r.TextTop[i].Blogger), f3(r.TextTop[i].Score),
			string(r.DropdownTop[i].Blogger), f3(r.DropdownTop[i].Score),
			string(r.GeneralTop[i].Blogger)}
		rows = append(rows, row)
	}
	writeTable(w, []string{"rank", "text mode", "score", "dropdown mode", "score", "no-domain fallback"}, rows)
	fmt.Fprintf(w, "\ntext/dropdown agreement@%d: %d; text-mode targets with true Sports expertise: %d/%d\n",
		len(r.TextTop), r.AgreementAt3, r.TargetsOnPoint, len(r.TextTop))
}

// ---------------------------------------------------------------- Figure 4

// Figure4Result reproduces the post-reply visualization export.
type Figure4Result struct {
	Center         blog.BloggerID
	Nodes, Edges   int
	MaxEdgeCount   int
	XMLRoundTripOK bool
	SVGBytes       int
	DOTBytes       int
}

// ExperimentFigure4 builds the post-reply network of the top blogger
// (radius 2), lays it out, and verifies the XML save/load round trip the
// demo promises, plus SVG/DOT export.
func ExperimentFigure4(cfg Config) (*Figure4Result, error) {
	w, err := buildWorkload(cfg)
	if err != nil {
		return nil, err
	}
	center := w.res.TopKGeneral(1)[0]
	net, err := viz.Build(w.corpus, center, 2, w.res.BloggerScores)
	if err != nil {
		return nil, err
	}
	net.Layout(w.cfg.Seed, 0)

	var xmlBuf bytes.Buffer
	if err := net.WriteXML(&xmlBuf); err != nil {
		return nil, err
	}
	reloaded, err := viz.ReadXML(bytes.NewReader(xmlBuf.Bytes()))
	if err != nil {
		return nil, err
	}
	roundTrip := reloaded.Center == net.Center &&
		len(reloaded.Nodes) == len(net.Nodes) &&
		len(reloaded.Edges) == len(net.Edges)

	var svgBuf, dotBuf bytes.Buffer
	if err := net.WriteSVG(&svgBuf, 1000, 800); err != nil {
		return nil, err
	}
	if err := net.WriteDOT(&dotBuf); err != nil {
		return nil, err
	}
	maxCount := 0
	for _, e := range net.Edges {
		if e.Count > maxCount {
			maxCount = e.Count
		}
	}
	return &Figure4Result{
		Center:         center,
		Nodes:          len(net.Nodes),
		Edges:          len(net.Edges),
		MaxEdgeCount:   maxCount,
		XMLRoundTripOK: roundTrip,
		SVGBytes:       svgBuf.Len(),
		DOTBytes:       dotBuf.Len(),
	}, nil
}

// Format renders the visualization report.
func (r *Figure4Result) Format(w io.Writer) {
	fmt.Fprintln(w, "Figure 4 — post-reply network of the top blogger")
	writeTable(w, []string{"Metric", "Value"}, [][]string{
		{"center blogger", string(r.Center)},
		{"nodes (radius 2)", fmt.Sprintf("%d", r.Nodes)},
		{"post-reply edges", fmt.Sprintf("%d", r.Edges)},
		{"max comments on one edge", fmt.Sprintf("%d", r.MaxEdgeCount)},
		{"XML save/load round trip", fmt.Sprintf("%v", r.XMLRoundTripOK)},
		{"SVG export bytes", fmt.Sprintf("%d", r.SVGBytes)},
		{"DOT export bytes", fmt.Sprintf("%d", r.DOTBytes)},
	})
}
