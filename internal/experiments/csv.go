package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"time"

	"mass/internal/lexicon"
)

// CSV writers: each figure-like result can dump its series as CSV for
// external plotting, so the repository's "regenerate every figure" story
// ends in data files, not just printed tables.

// WriteCSV emits rows system,domain,score,paperScore.
func (r *Table1Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"system", "domain", "score", "paper"}); err != nil {
		return err
	}
	for _, sys := range table1Systems {
		for _, d := range Table1Domains {
			err := cw.Write([]string{sys, d,
				f2(r.Scores[sys][d]), f2(PaperTable1[sys][d])})
			if err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits rows value,ndcg,spearman,iters for a parameter sweep.
func (r *SweepResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{r.Param, "ndcg10", "spearman", "iters"}); err != nil {
		return err
	}
	for _, p := range r.Points {
		err := cw.Write([]string{f2(p.Value), f3(p.NDCG), f3(p.Spearman),
			fmt.Sprintf("%d", p.Iters)})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits rows bloggers,posts,comments,analyzeMillis,iters.
func (r *ScalabilityResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"bloggers", "posts", "comments", "analyzeMillis", "iters"}); err != nil {
		return err
	}
	for _, p := range r.Points {
		err := cw.Write([]string{
			fmt.Sprintf("%d", p.Bloggers),
			fmt.Sprintf("%d", p.Posts),
			fmt.Sprintf("%d", p.Comments),
			fmt.Sprintf("%d", p.AnalyzeTime/time.Millisecond),
			fmt.Sprintf("%d", p.Iterations),
		})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits the ablation rows.
func (r *AblationResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"variant", "ndcg10", "spearman", "judgeScore"}); err != nil {
		return err
	}
	for _, row := range r.Rows {
		err := cw.Write([]string{row.Variant, f3(row.NDCG), f3(row.Spearman), f2(row.Table1Style)})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits the per-domain overlap rows.
func (r *OverlapResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"domain", "overlapGeneral", "overlapLive",
		"rboGeneral", "truthPrecisionDS", "truthPrecisionGeneral"}); err != nil {
		return err
	}
	for _, row := range r.Rows {
		err := cw.Write([]string{row.Domain, f2(row.VsGeneral), f2(row.VsLive),
			f2(row.RBOGeneral), f2(row.TruthPrecision), f2(row.GeneralTruthPrecision)})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// AllDomainsHeader is the canonical domain column order for CSV consumers.
func AllDomainsHeader() []string { return lexicon.Domains() }
