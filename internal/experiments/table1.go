package experiments

import (
	"fmt"
	"io"
	"math"

	"mass/internal/baseline"
	"mass/internal/blog"
	"mass/internal/lexicon"
	"mass/internal/rank"
	"mass/internal/userstudy"
)

// Table1Domains are the three domains the paper reports in Table I.
var Table1Domains = []string{lexicon.Travel, lexicon.Art, lexicon.Sports}

// PaperTable1 holds the numbers printed in the paper, for side-by-side
// comparison in reports (rows: General, Live Index, Domain Specific;
// columns: Travel, Art, Sports).
var PaperTable1 = map[string]map[string]float64{
	"General":         {lexicon.Travel: 3.2, lexicon.Art: 3.2, lexicon.Sports: 3.2},
	"Live Index":      {lexicon.Travel: 3.0, lexicon.Art: 3.3, lexicon.Sports: 3.1},
	"Domain Specific": {lexicon.Travel: 4.3, lexicon.Art: 4.1, lexicon.Sports: 4.6},
}

// Table1Result is the regenerated Table I: average applicable scores per
// system and domain from the simulated user study.
type Table1Result struct {
	Config Config
	// Scores[system][domain] is the panel's average 1–5 score.
	Scores map[string]map[string]float64
	// StdErr[system][domain] is the standard error of that average across
	// resampled judge panels (the human study could not report this; the
	// simulation can).
	StdErr map[string]map[string]float64
	// TopK[system][domain] records which bloggers were judged.
	TopK map[string]map[string][]blog.BloggerID
}

// panelResamples is how many independently-seeded judge panels the score
// average is computed over.
const panelResamples = 20

// Systems in row order.
var table1Systems = []string{"General", "Live Index", "Domain Specific"}

// ExperimentTable1 reproduces the paper's Table I protocol: mine top-k
// bloggers with each system, submit each list to the judge panel for each
// of the three domains, and average the 1–5 scores.
func ExperimentTable1(cfg Config) (*Table1Result, error) {
	w, err := buildWorkload(cfg)
	if err != nil {
		return nil, err
	}
	cfg = w.cfg

	// General and Live Index produce one global list each, judged against
	// every domain (that is the paper's point: they cannot adapt).
	generalScores, err := (baseline.General{}).Rank(w.corpus)
	if err != nil {
		return nil, err
	}
	liveScores, err := (baseline.LiveIndex{}).Rank(w.corpus)
	if err != nil {
		return nil, err
	}
	generalTop := topIDs(generalScores, cfg.K)
	liveTop := topIDs(liveScores, cfg.K)

	res := &Table1Result{
		Config: cfg,
		Scores: map[string]map[string]float64{},
		StdErr: map[string]map[string]float64{},
		TopK:   map[string]map[string][]blog.BloggerID{},
	}
	for _, sys := range table1Systems {
		res.Scores[sys] = map[string]float64{}
		res.StdErr[sys] = map[string]float64{}
		res.TopK[sys] = map[string][]blog.BloggerID{}
	}
	for _, domain := range Table1Domains {
		dsTop := w.res.TopKDomain(domain, cfg.K)
		lists := map[string][]blog.BloggerID{
			"General":         generalTop,
			"Live Index":      liveTop,
			"Domain Specific": dsTop,
		}
		for sys, list := range lists {
			// Resample the judge panel so the reported score carries an
			// uncertainty estimate instead of one panel's noise.
			var samples []float64
			for r := 0; r < panelResamples; r++ {
				panel := userstudy.Panel{Judges: cfg.Judges, Seed: cfg.Seed + 7 + int64(r)*101}
				s, err := panel.Score(list, domain, w.gt)
				if err != nil {
					return nil, fmt.Errorf("experiments: table1 %s/%s: %w", sys, domain, err)
				}
				samples = append(samples, s)
			}
			mean, se := meanStderr(samples)
			res.Scores[sys][domain] = mean
			res.StdErr[sys][domain] = se
			res.TopK[sys][domain] = list
		}
	}
	return res, nil
}

// meanStderr returns the sample mean and its standard error.
func meanStderr(xs []float64) (mean, se float64) {
	n := float64(len(xs))
	if n == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= n
	if n < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss/(n-1)) / math.Sqrt(n)
}

// ShapeHolds reports whether the paper's qualitative claim reproduces:
// Domain Specific is never significantly beaten by General or Live Index
// in any domain, and significantly wins in a majority of them.
// Significance is three combined standard errors of the resampled panel
// means. Statistical ties are tolerated because on small corpora a global
// list can legitimately coincide with one domain's expert list (the
// globally most influential bloggers may *be* that domain's experts).
func (r *Table1Result) ShapeHolds() bool {
	wins := 0
	for _, d := range Table1Domains {
		ds := r.Scores["Domain Specific"][d]
		dsSE := r.StdErr["Domain Specific"][d]
		bestSys := "General"
		if r.Scores["Live Index"][d] > r.Scores[bestSys][d] {
			bestSys = "Live Index"
		}
		best := r.Scores[bestSys][d]
		margin := 3 * (dsSE + r.StdErr[bestSys][d])
		if ds < best-margin {
			return false
		}
		if ds > best+margin {
			wins++
		}
	}
	return wins*2 > len(Table1Domains)
}

// Format renders the regenerated table next to the paper's numbers.
func (r *Table1Result) Format(w io.Writer) {
	fmt.Fprintln(w, "Table I — user evaluation of average applicable scores")
	fmt.Fprintf(w, "(simulated panel: %d judges, top-%d, corpus %d bloggers / %d posts, seed %d)\n\n",
		r.Config.Judges, r.Config.K, r.Config.Bloggers, r.Config.Posts, r.Config.Seed)
	header := []string{"Average Applicable Scores", "Travel", "Art", "Sports", "| paper: Travel", "Art", "Sports"}
	var rows [][]string
	for _, sys := range table1Systems {
		row := []string{sys}
		for _, d := range Table1Domains {
			row = append(row, fmt.Sprintf("%s±%.2f", f2(r.Scores[sys][d]), r.StdErr[sys][d]))
		}
		row = append(row, "| "+f2(PaperTable1[sys][lexicon.Travel]),
			f2(PaperTable1[sys][lexicon.Art]), f2(PaperTable1[sys][lexicon.Sports]))
		rows = append(rows, row)
	}
	writeTable(w, header, rows)
	fmt.Fprintf(w, "\nshape holds (Domain Specific never significantly loses, significantly wins a majority): %v\n", r.ShapeHolds())
}

func topIDs(scores map[blog.BloggerID]float64, k int) []blog.BloggerID {
	m := make(map[string]float64, len(scores))
	for id, s := range scores {
		m[string(id)] = s
	}
	entries := rank.TopK(m, k)
	out := make([]blog.BloggerID, len(entries))
	for i, e := range entries {
		out[i] = blog.BloggerID(e.ID)
	}
	return out
}
