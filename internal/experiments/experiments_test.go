package experiments

import (
	"bytes"
	"strings"
	"testing"

	"mass/internal/lexicon"
)

// testConfig is small enough to run all experiments quickly in CI.
func testConfig() Config {
	return Config{Seed: 2010, Bloggers: 120, Posts: 900}
}

func TestTable1ShapeHolds(t *testing.T) {
	r, err := ExperimentTable1(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !r.ShapeHolds() {
		var buf bytes.Buffer
		r.Format(&buf)
		t.Fatalf("Table I shape did not reproduce:\n%s", buf.String())
	}
	// Scores are on the 1–5 scale.
	for sys, ds := range r.Scores {
		for d, s := range ds {
			if s < 1 || s > 5 {
				t.Fatalf("%s/%s score %v outside 1..5", sys, d, s)
			}
		}
	}
	// Domain-specific should be clearly better, not marginally (the paper
	// reports gaps of ~1 point).
	for _, d := range Table1Domains {
		gap := r.Scores["Domain Specific"][d] - r.Scores["General"][d]
		if gap < 0.3 {
			t.Fatalf("Domain Specific advantage in %s only %.2f, want >= 0.3", d, gap)
		}
	}
}

func TestTable1Deterministic(t *testing.T) {
	r1, err := ExperimentTable1(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ExperimentTable1(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for sys, ds := range r1.Scores {
		for d, s := range ds {
			if r2.Scores[sys][d] != s {
				t.Fatalf("Table I not deterministic at %s/%s", sys, d)
			}
		}
	}
}

func TestTable1Format(t *testing.T) {
	r, err := ExperimentTable1(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	r.Format(&buf)
	out := buf.String()
	for _, want := range []string{"Table I", "General", "Live Index", "Domain Specific", "Travel", "Sports"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format output missing %q:\n%s", want, out)
		}
	}
}

func TestFigure1(t *testing.T) {
	r, err := ExperimentFigure1(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Converged {
		t.Fatal("Figure 1 analysis must converge")
	}
	if r.Top3[0] != "Amery" {
		t.Fatalf("top blogger = %v, want Amery", r.Top3)
	}
	// Amery's influence decomposes into both Computer and Economics.
	if r.AmeryDomains[lexicon.Computer] <= 0 || r.AmeryDomains[lexicon.Economics] <= 0 {
		t.Fatalf("Amery domain split missing: %v", r.AmeryDomains)
	}
	var buf bytes.Buffer
	r.Format(&buf)
	if !strings.Contains(buf.String(), "Amery") {
		t.Fatal("Format output incomplete")
	}
}

func TestFigure2Pipeline(t *testing.T) {
	cfg := testConfig()
	cfg.Bloggers, cfg.Posts = 50, 300 // crawl over HTTP: keep it snappy
	r, err := ExperimentFigure2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.CrawlStats.Fetched == 0 || r.Posts == 0 {
		t.Fatalf("pipeline fetched nothing: %+v", r)
	}
	if !r.ReloadConsistent {
		t.Fatal("XML reload changed the analysis")
	}
	if r.XMLBytes == 0 {
		t.Fatal("snapshot empty")
	}
	var buf bytes.Buffer
	r.Format(&buf)
	if !strings.Contains(buf.String(), "reload consistency") {
		t.Fatal("Format output incomplete")
	}
}

func TestFigure3Advertisement(t *testing.T) {
	r, err := ExperimentFigure3(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.MinedDomains) == 0 || r.MinedDomains[0] != lexicon.Sports {
		t.Fatalf("ad must mine Sports first, got %v", r.MinedDomains)
	}
	if len(r.TextTop) != 3 || len(r.DropdownTop) != 3 {
		t.Fatalf("want 3 recommendations per mode: %d/%d", len(r.TextTop), len(r.DropdownTop))
	}
	if r.TargetsOnPoint == 0 {
		t.Fatal("no text-mode target has true Sports expertise")
	}
	var buf bytes.Buffer
	r.Format(&buf)
	if !strings.Contains(buf.String(), "dropdown") {
		t.Fatal("Format output incomplete")
	}
}

func TestFigure4Visualization(t *testing.T) {
	r, err := ExperimentFigure4(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.Nodes == 0 || r.Edges == 0 {
		t.Fatalf("empty network: %+v", r)
	}
	if !r.XMLRoundTripOK {
		t.Fatal("XML round trip failed")
	}
	if r.SVGBytes == 0 || r.DOTBytes == 0 {
		t.Fatal("exports empty")
	}
	var buf bytes.Buffer
	r.Format(&buf)
	if !strings.Contains(buf.String(), "post-reply") {
		t.Fatal("Format output incomplete")
	}
}

func TestAlphaSweep(t *testing.T) {
	r, err := ExperimentAlphaSweep(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 5 {
		t.Fatalf("want 5 sweep points, got %d", len(r.Points))
	}
	for _, p := range r.Points {
		if p.NDCG < 0 || p.NDCG > 1 {
			t.Fatalf("NDCG out of range at alpha=%v: %v", p.Value, p.NDCG)
		}
	}
	// Mixing facets (alpha in the middle) must beat pure link authority
	// (alpha=0) — the paper's core claim that posts+comments matter.
	mid := r.Points[2].NDCG // alpha = 0.5
	pureGL := r.Points[0].NDCG
	if mid <= pureGL {
		t.Fatalf("alpha=0.5 (%.3f) must beat pure GL (%.3f)", mid, pureGL)
	}
}

func TestBetaSweep(t *testing.T) {
	r, err := ExperimentBetaSweep(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 6 {
		t.Fatalf("want 6 sweep points, got %d", len(r.Points))
	}
	var buf bytes.Buffer
	r.Format(&buf)
	if !strings.Contains(buf.String(), "beta") {
		t.Fatal("Format output incomplete")
	}
}

func TestFacetAblation(t *testing.T) {
	r, err := ExperimentFacetAblation(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("want 5 variants, got %d", len(r.Rows))
	}
	if r.Rows[0].Variant != "full MASS" {
		t.Fatalf("first row must be the full model: %v", r.Rows[0])
	}
	full := r.Rows[0].NDCG
	if full <= 0 {
		t.Fatal("full model NDCG must be positive")
	}
	var buf bytes.Buffer
	r.Format(&buf)
	if !strings.Contains(buf.String(), "sentiment") {
		t.Fatal("Format output incomplete")
	}
}

func TestClassifierExperiment(t *testing.T) {
	r, err := ExperimentClassifier(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"naive Bayes", "TF-IDF centroid"} {
		if r.PostAccuracy[m] < 0.5 {
			t.Fatalf("%s post accuracy %.2f too low", m, r.PostAccuracy[m])
		}
		if r.CVAccuracy[m] < 0.5 {
			t.Fatalf("%s CV accuracy %.2f too low", m, r.CVAccuracy[m])
		}
	}
}

func TestConvergenceExperiment(t *testing.T) {
	r, err := ExperimentConvergence(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 4 {
		t.Fatalf("want 4 tolerance points, got %d", len(r.Points))
	}
	// Tighter tolerance needs at least as many iterations.
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].Iterations < r.Points[i-1].Iterations {
			t.Fatalf("iterations must not decrease as eps tightens: %+v", r.Points)
		}
		if !r.Points[i].Converged {
			t.Fatalf("solver must converge at eps=%v", r.Points[i].Epsilon)
		}
	}
}

func TestSystemOverlap(t *testing.T) {
	r, err := ExperimentSystemOverlap(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 10 {
		t.Fatalf("want 10 domains, got %d", len(r.Rows))
	}
	ds, gen := r.MeanTruthPrecision()
	if ds <= gen {
		t.Fatalf("domain-specific truth precision (%.2f) must beat General (%.2f)", ds, gen)
	}
	// The global lists can match a domain list in at most a couple of
	// domains; on average the overlap must be small.
	var overlapSum float64
	for _, row := range r.Rows {
		overlapSum += row.VsGeneral
	}
	if overlapSum/10 > 0.5 {
		t.Fatalf("mean overlap vs General = %.2f, domain lists should diverge", overlapSum/10)
	}
	var buf bytes.Buffer
	r.Format(&buf)
	if !strings.Contains(buf.String(), "System overlap") {
		t.Fatal("Format output incomplete")
	}
}

func TestCSVWriters(t *testing.T) {
	cfg := testConfig()
	t1, err := ExperimentTable1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sweep, err := ExperimentAlphaSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scale, err := ExperimentScalability(cfg, []int{40})
	if err != nil {
		t.Fatal(err)
	}
	overlap, err := ExperimentSystemOverlap(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ablation, err := ExperimentFacetAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name     string
		write    func(*bytes.Buffer) error
		header   string
		wantRows int
	}{
		{"table1", func(b *bytes.Buffer) error { return t1.WriteCSV(b) }, "system,domain,score,paper", 9},
		{"sweep", func(b *bytes.Buffer) error { return sweep.WriteCSV(b) }, "alpha,ndcg10,spearman,iters", 5},
		{"scale", func(b *bytes.Buffer) error { return scale.WriteCSV(b) }, "bloggers,posts,comments,analyzeMillis,iters", 1},
		{"overlap", func(b *bytes.Buffer) error { return overlap.WriteCSV(b) }, "domain,overlapGeneral", 10},
		{"ablation", func(b *bytes.Buffer) error { return ablation.WriteCSV(b) }, "variant,ndcg10,spearman,judgeScore", 5},
	}
	for _, c := range cases {
		var buf bytes.Buffer
		if err := c.write(&buf); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
		if !strings.HasPrefix(lines[0], c.header) {
			t.Fatalf("%s header = %q, want prefix %q", c.name, lines[0], c.header)
		}
		if len(lines)-1 != c.wantRows {
			t.Fatalf("%s rows = %d, want %d", c.name, len(lines)-1, c.wantRows)
		}
	}
	if len(AllDomainsHeader()) != 10 {
		t.Fatal("domain header must list all ten domains")
	}
}

func TestExtensionsExperiment(t *testing.T) {
	r, err := ExperimentExtensions(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.TopicPurity < 0.4 {
		t.Fatalf("topic purity = %.2f, want >= 0.4", r.TopicPurity)
	}
	if r.TagGroups == 0 {
		t.Fatal("no tag interest groups discovered")
	}
	if r.DecayMassRetained <= 0 || r.DecayMassRetained >= 1 {
		t.Fatalf("decay mass retained = %v, want in (0,1)", r.DecayMassRetained)
	}
	var buf bytes.Buffer
	r.Format(&buf)
	if !strings.Contains(buf.String(), "topic discovery") {
		t.Fatal("Format output incomplete")
	}
}

func TestScalabilityExperiment(t *testing.T) {
	r, err := ExperimentScalability(testConfig(), []int{50, 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 2 {
		t.Fatalf("want 2 scale points, got %d", len(r.Points))
	}
	if r.Points[1].Posts <= r.Points[0].Posts {
		t.Fatal("larger corpus must have more posts")
	}
	var buf bytes.Buffer
	r.Format(&buf)
	if !strings.Contains(buf.String(), "bloggers") {
		t.Fatal("Format output incomplete")
	}
}

func TestShardingExperiment(t *testing.T) {
	r, err := ExperimentSharding(testConfig(), []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 2 {
		t.Fatalf("want 2 shard points, got %d", len(r.Points))
	}
	if r.Points[0].BoundaryEdges != 0 {
		t.Fatal("one shard cannot have boundary edges")
	}
	if r.Points[1].BoundaryEdges == 0 {
		t.Fatal("3-way split of a linked corpus must cross shards")
	}
	// The sharded global solve must agree with the single-engine solve to
	// solver tolerance (the property test in internal/cluster pins 1e-12
	// at the default epsilon; the experiment just sanity-checks the wire).
	if r.Points[1].PageRankDiff > 1e-9 {
		t.Fatalf("sharded PageRank drifted %g from the single-engine solve", r.Points[1].PageRankDiff)
	}
	var buf bytes.Buffer
	r.Format(&buf)
	if !strings.Contains(buf.String(), "boundary") {
		t.Fatal("Format output incomplete")
	}
	buf.Reset()
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "pagerank_maxdiff") {
		t.Fatal("CSV output incomplete")
	}
}
