package classify

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"mass/internal/lexicon"
)

// trainingSet builds a small, clearly separable corpus from the domain
// vocabularies: each example is a run of words from one domain.
func trainingSet(perDomain int) []Example {
	var out []Example
	for _, d := range []string{lexicon.Sports, lexicon.Economics, lexicon.Computer} {
		vocab := lexicon.Vocabulary(d)
		for i := 0; i < perDomain; i++ {
			words := make([]string, 0, 12)
			for j := 0; j < 12; j++ {
				words = append(words, vocab[(i*7+j*3)%len(vocab)])
			}
			out = append(out, Example{Text: strings.Join(words, " "), Label: d})
		}
	}
	return out
}

func TestTrainNaiveBayesErrors(t *testing.T) {
	if _, err := TrainNaiveBayes(nil); err == nil {
		t.Fatal("empty training set must error")
	}
	if _, err := TrainNaiveBayes([]Example{{Text: "x", Label: ""}}); err == nil {
		t.Fatal("empty label must error")
	}
}

func TestNaiveBayesSeparable(t *testing.T) {
	nb, err := TrainNaiveBayes(trainingSet(10))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"the basketball playoff score and the stadium coach": lexicon.Sports,
		"inflation recession market stock finance bank":      lexicon.Economics,
		"compiler algorithm database kernel software code":   lexicon.Computer,
	}
	for text, want := range cases {
		top, p := Top(nb.Classify(text))
		if top != want {
			t.Errorf("Classify(%q) top = %s (p=%.3f), want %s", text, top, p, want)
		}
		if p < 0.5 {
			t.Errorf("Classify(%q) confidence %.3f too low", text, p)
		}
	}
}

func TestNaiveBayesPosteriorSumsToOne(t *testing.T) {
	nb, err := TrainNaiveBayes(trainingSet(5))
	if err != nil {
		t.Fatal(err)
	}
	dist := nb.Classify("a mystery document about nothing in particular")
	var sum float64
	for _, p := range dist {
		if p < 0 {
			t.Fatalf("negative posterior: %v", dist)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("posteriors sum to %v", sum)
	}
	if len(dist) != 3 {
		t.Fatalf("want 3 labels, got %v", dist)
	}
}

func TestNaiveBayesLabelsSorted(t *testing.T) {
	nb, err := TrainNaiveBayes(trainingSet(3))
	if err != nil {
		t.Fatal(err)
	}
	labels := nb.Labels()
	for i := 1; i < len(labels); i++ {
		if labels[i-1] >= labels[i] {
			t.Fatalf("labels not sorted: %v", labels)
		}
	}
	if nb.VocabularySize() == 0 {
		t.Fatal("vocabulary must be non-empty")
	}
}

func TestNaiveBayesPriorEffect(t *testing.T) {
	// With an empty document, posterior equals the prior distribution.
	ex := []Example{
		{Text: "alpha beta", Label: "X"},
		{Text: "alpha beta", Label: "X"},
		{Text: "gamma delta", Label: "Y"},
	}
	nb, err := TrainNaiveBayes(ex)
	if err != nil {
		t.Fatal(err)
	}
	dist := nb.Classify("")
	if math.Abs(dist["X"]-2.0/3) > 1e-9 || math.Abs(dist["Y"]-1.0/3) > 1e-9 {
		t.Fatalf("empty-doc posterior = %v, want prior (2/3, 1/3)", dist)
	}
}

func TestNaiveBayesBigrams(t *testing.T) {
	nb, err := TrainNaiveBayesBigrams(trainingSet(10))
	if err != nil {
		t.Fatal(err)
	}
	// Still separable with bigram features.
	top, _ := Top(nb.Classify("basketball playoff stadium coach"))
	if top != lexicon.Sports {
		t.Fatalf("bigram NB top = %s, want Sports", top)
	}
	// Bigram vocabulary is strictly larger than unigram.
	uni, err := TrainNaiveBayes(trainingSet(10))
	if err != nil {
		t.Fatal(err)
	}
	if nb.VocabularySize() <= uni.VocabularySize() {
		t.Fatalf("bigram vocab %d must exceed unigram %d",
			nb.VocabularySize(), uni.VocabularySize())
	}
	// Posterior is still a distribution.
	dist := nb.Classify("anything at all")
	var sum float64
	for _, p := range dist {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("bigram posterior sums to %v", sum)
	}
}

func TestBigramFeatureConstruction(t *testing.T) {
	got := features("stock market rally", true)
	want := map[string]bool{"stock": true, "market": true, "rally": true,
		"stock_market": true, "market_rally": true}
	if len(got) != len(want) {
		t.Fatalf("features = %v", got)
	}
	for _, f := range got {
		if !want[f] {
			t.Fatalf("unexpected feature %q in %v", f, got)
		}
	}
}

func TestCentroidSeparable(t *testing.T) {
	c, err := TrainCentroid(trainingSet(10))
	if err != nil {
		t.Fatal(err)
	}
	top, _ := Top(c.Classify("marathon olympics athlete medal sprint"))
	if top != lexicon.Sports {
		t.Fatalf("centroid top = %s, want Sports", top)
	}
}

func TestCentroidUnknownTextUniform(t *testing.T) {
	c, err := TrainCentroid(trainingSet(3))
	if err != nil {
		t.Fatal(err)
	}
	dist := c.Classify("zzzz qqqq wwww")
	for _, p := range dist {
		if math.Abs(p-1.0/3) > 1e-9 {
			t.Fatalf("unknown text must be uniform: %v", dist)
		}
	}
}

func TestCentroidErrors(t *testing.T) {
	if _, err := TrainCentroid(nil); err == nil {
		t.Fatal("empty training set must error")
	}
	if _, err := TrainCentroid([]Example{{Text: "x"}}); err == nil {
		t.Fatal("empty label must error")
	}
}

func TestTopEmpty(t *testing.T) {
	if l, p := Top(nil); l != "" || p != 0 {
		t.Fatalf("Top(nil) = %q, %v", l, p)
	}
}

func TestTopDeterministicTies(t *testing.T) {
	l, _ := Top(map[string]float64{"b": 0.5, "a": 0.5})
	if l != "a" {
		t.Fatalf("tie must break alphabetically, got %q", l)
	}
}

func TestAccuracy(t *testing.T) {
	nb, err := TrainNaiveBayes(trainingSet(10))
	if err != nil {
		t.Fatal(err)
	}
	test := trainingSet(4)
	acc := Accuracy(nb, test)
	if acc < 0.9 {
		t.Fatalf("training-domain accuracy = %v, want >= 0.9", acc)
	}
	if Accuracy(nb, nil) != 0 {
		t.Fatal("Accuracy on empty test set must be 0")
	}
}

func TestCrossValidate(t *testing.T) {
	ex := trainingSet(10)
	accs, err := CrossValidate(ex, 5, func(tr []Example) (Classifier, error) {
		return TrainNaiveBayes(tr)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(accs) != 5 {
		t.Fatalf("want 5 folds, got %d", len(accs))
	}
	var mean float64
	for _, a := range accs {
		mean += a
	}
	mean /= 5
	if mean < 0.8 {
		t.Fatalf("mean CV accuracy = %v, want >= 0.8", mean)
	}
	if _, err := CrossValidate(ex, 1, nil); err == nil {
		t.Fatal("k=1 must error")
	}
	if _, err := CrossValidate(ex[:2], 5, nil); err == nil {
		t.Fatal("n < k must error")
	}
}

// Property: both classifiers always return a proper distribution over the
// trained labels for arbitrary input text.
func TestClassifierDistributionProperty(t *testing.T) {
	nb, err := TrainNaiveBayes(trainingSet(5))
	if err != nil {
		t.Fatal(err)
	}
	cen, err := TrainCentroid(trainingSet(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, cl := range []Classifier{nb, cen} {
		f := func(text string) bool {
			dist := cl.Classify(text)
			if len(dist) != len(cl.Labels()) {
				return false
			}
			var sum float64
			for _, p := range dist {
				if p < 0 || math.IsNaN(p) {
					return false
				}
				sum += p
			}
			return math.Abs(sum-1) < 1e-6
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Fatal(err)
		}
	}
}
