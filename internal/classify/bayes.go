// Package classify implements the Post Analyzer of MASS: text classifiers
// that estimate iv(b,d,Ct), the probability that a post belongs to each
// interest domain. The paper uses a multinomial naive Bayes classifier [7];
// a TF-IDF nearest-centroid classifier is provided as the pluggable
// alternative the paper mentions ("other interests mining methods can also
// be plugged into our system").
package classify

import (
	"fmt"
	"math"
	"sort"

	"mass/internal/textutil"
)

// Classifier estimates a probability distribution over domain labels for a
// piece of text. Implementations must return a map whose values sum to 1
// (within floating-point error) covering exactly the trained labels.
type Classifier interface {
	// Classify returns the posterior P(label | text) for every label.
	Classify(text string) map[string]float64
	// Labels returns the trained label set in sorted order.
	Labels() []string
}

// Example is one labeled training document.
type Example struct {
	Text  string
	Label string
}

// NaiveBayes is a multinomial naive Bayes text classifier with Laplace
// smoothing, trained over the stemmed-term analyzer chain, optionally
// augmented with bigram features.
type NaiveBayes struct {
	labels     []string
	prior      map[string]float64            // log P(label)
	condLog    map[string]map[string]float64 // label -> term -> log P(term|label)
	defaultLog map[string]float64            // label -> log prob of unseen term
	vocabSize  int
	bigrams    bool
}

// TrainNaiveBayes fits the classifier on the examples with unigram
// features. It returns an error when there are no examples or an example
// has an empty label.
func TrainNaiveBayes(examples []Example) (*NaiveBayes, error) {
	return trainNB(examples, false)
}

// TrainNaiveBayesBigrams fits the classifier with unigram + bigram
// features. Bigrams capture collocations ("interest rate" vs "interest
// group") at the cost of a larger model; on short posts the gain is
// usually small (see ExperimentClassifier).
func TrainNaiveBayesBigrams(examples []Example) (*NaiveBayes, error) {
	return trainNB(examples, true)
}

func trainNB(examples []Example, bigrams bool) (*NaiveBayes, error) {
	if len(examples) == 0 {
		return nil, fmt.Errorf("classify: no training examples")
	}
	docCount := map[string]int{}
	termCount := map[string]map[string]float64{}
	totalTerms := map[string]float64{}
	vocab := map[string]struct{}{}
	for i, ex := range examples {
		if ex.Label == "" {
			return nil, fmt.Errorf("classify: example %d has empty label", i)
		}
		docCount[ex.Label]++
		if termCount[ex.Label] == nil {
			termCount[ex.Label] = map[string]float64{}
		}
		for _, t := range features(ex.Text, bigrams) {
			termCount[ex.Label][t]++
			totalTerms[ex.Label]++
			vocab[t] = struct{}{}
		}
	}
	nb := &NaiveBayes{
		prior:      map[string]float64{},
		condLog:    map[string]map[string]float64{},
		defaultLog: map[string]float64{},
		vocabSize:  len(vocab),
		bigrams:    bigrams,
	}
	v := float64(len(vocab))
	total := float64(len(examples))
	for label, dc := range docCount {
		nb.labels = append(nb.labels, label)
		nb.prior[label] = math.Log(float64(dc) / total)
		denom := totalTerms[label] + v // Laplace smoothing
		cond := make(map[string]float64, len(termCount[label]))
		for t, c := range termCount[label] {
			cond[t] = math.Log((c + 1) / denom)
		}
		nb.condLog[label] = cond
		nb.defaultLog[label] = math.Log(1 / denom)
	}
	sort.Strings(nb.labels)
	return nb, nil
}

// Labels returns the trained label set in sorted order.
func (nb *NaiveBayes) Labels() []string { return nb.labels }

// VocabularySize returns the number of distinct terms seen in training.
func (nb *NaiveBayes) VocabularySize() int { return nb.vocabSize }

// Classify returns the posterior distribution over labels. Log-likelihoods
// are converted back to probabilities with the log-sum-exp trick so the
// result is a proper distribution even for long documents.
func (nb *NaiveBayes) Classify(text string) map[string]float64 {
	terms := features(text, nb.bigrams)
	logp := make([]float64, len(nb.labels))
	for i, label := range nb.labels {
		lp := nb.prior[label]
		cond := nb.condLog[label]
		def := nb.defaultLog[label]
		for _, t := range terms {
			if c, ok := cond[t]; ok {
				lp += c
			} else {
				lp += def
			}
		}
		logp[i] = lp
	}
	return softmaxLogs(nb.labels, logp)
}

// features runs the analyzer chain and optionally appends adjacent-term
// bigrams (joined with '_').
func features(text string, bigrams bool) []string {
	terms := textutil.Terms(text)
	if !bigrams {
		return terms
	}
	out := make([]string, len(terms), 2*len(terms))
	copy(out, terms)
	for i := 1; i < len(terms); i++ {
		out = append(out, terms[i-1]+"_"+terms[i])
	}
	return out
}

// softmaxLogs converts log-probabilities to a normalized distribution.
func softmaxLogs(labels []string, logp []float64) map[string]float64 {
	maxLog := math.Inf(-1)
	for _, lp := range logp {
		if lp > maxLog {
			maxLog = lp
		}
	}
	out := make(map[string]float64, len(labels))
	var sum float64
	for i := range labels {
		e := math.Exp(logp[i] - maxLog)
		out[labels[i]] = e
		sum += e
	}
	for l := range out {
		out[l] /= sum
	}
	return out
}

// Top returns the label with the highest posterior (ties broken
// alphabetically) and its probability.
func Top(dist map[string]float64) (string, float64) {
	best, bestP := "", math.Inf(-1)
	labels := make([]string, 0, len(dist))
	for l := range dist {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		if dist[l] > bestP {
			best, bestP = l, dist[l]
		}
	}
	if best == "" {
		return "", 0
	}
	return best, bestP
}
