package classify_test

import (
	"fmt"
	"log"

	"mass/internal/classify"
)

// ExampleTrainNaiveBayes shows the Post Analyzer flow: train on labeled
// snippets, then read the posterior iv(b,d,Ct) for a new post.
func ExampleTrainNaiveBayes() {
	nb, err := classify.TrainNaiveBayes([]classify.Example{
		{Text: "stock market bank interest inflation", Label: "Economics"},
		{Text: "currency trade deficit recession", Label: "Economics"},
		{Text: "basketball playoff stadium coach", Label: "Sports"},
		{Text: "marathon olympics athlete medal", Label: "Sports"},
	})
	if err != nil {
		log.Fatal(err)
	}
	label, p := classify.Top(nb.Classify("the bank raised the interest rate again"))
	fmt.Printf("%s (p > 0.5: %v)\n", label, p > 0.5)
	// Output:
	// Economics (p > 0.5: true)
}
