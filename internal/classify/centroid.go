package classify

import (
	"fmt"
	"math"
	"sort"

	"mass/internal/textutil"
)

// Centroid is a TF-IDF nearest-centroid (Rocchio) classifier: each label is
// represented by the IDF-weighted mean of its training documents, and a new
// document is scored by cosine similarity to each centroid, normalized to a
// distribution. It is the pluggable alternative to NaiveBayes.
type Centroid struct {
	labels    []string
	idf       map[string]float64
	centroids map[string]textutil.TermVector
}

// TrainCentroid fits the centroid classifier.
func TrainCentroid(examples []Example) (*Centroid, error) {
	if len(examples) == 0 {
		return nil, fmt.Errorf("classify: no training examples")
	}
	df := map[string]int{}
	docs := make([]textutil.TermVector, len(examples))
	for i, ex := range examples {
		if ex.Label == "" {
			return nil, fmt.Errorf("classify: example %d has empty label", i)
		}
		v := textutil.NewTermVector(ex.Text)
		docs[i] = v
		for t := range v {
			df[t]++
		}
	}
	n := float64(len(examples))
	c := &Centroid{
		idf:       make(map[string]float64, len(df)),
		centroids: map[string]textutil.TermVector{},
	}
	for t, d := range df {
		c.idf[t] = math.Log(1 + n/float64(d))
	}
	counts := map[string]float64{}
	for i, ex := range examples {
		if c.centroids[ex.Label] == nil {
			c.centroids[ex.Label] = textutil.TermVector{}
			c.labels = append(c.labels, ex.Label)
		}
		cen := c.centroids[ex.Label]
		for t, tf := range docs[i] {
			cen[t] += tf * c.idf[t]
		}
		counts[ex.Label]++
	}
	for label, cen := range c.centroids {
		k := counts[label]
		for t := range cen {
			cen[t] /= k
		}
	}
	sort.Strings(c.labels)
	return c, nil
}

// Labels returns the trained label set in sorted order.
func (c *Centroid) Labels() []string { return c.labels }

// Classify returns cosine similarities to each centroid normalized into a
// distribution. A document with no overlap anywhere gets the uniform
// distribution.
func (c *Centroid) Classify(text string) map[string]float64 {
	v := textutil.NewTermVector(text)
	weighted := textutil.TermVector{}
	for t, tf := range v {
		if idf, ok := c.idf[t]; ok {
			weighted[t] = tf * idf
		}
	}
	out := make(map[string]float64, len(c.labels))
	var sum float64
	for _, label := range c.labels {
		s := weighted.Cosine(c.centroids[label])
		out[label] = s
		sum += s
	}
	if sum == 0 {
		u := 1 / float64(len(c.labels))
		for _, label := range c.labels {
			out[label] = u
		}
		return out
	}
	for label := range out {
		out[label] /= sum
	}
	return out
}

// Accuracy evaluates a classifier on labeled test examples, returning the
// fraction whose top posterior matches the true label.
func Accuracy(cl Classifier, test []Example) float64 {
	if len(test) == 0 {
		return 0
	}
	correct := 0
	for _, ex := range test {
		if top, _ := Top(cl.Classify(ex.Text)); top == ex.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(test))
}

// CrossValidate runs k-fold cross-validation with the given trainer and
// returns per-fold accuracies. Examples are assigned to folds round-robin
// in input order (the caller shuffles if desired), so results are
// deterministic.
func CrossValidate(examples []Example, k int, train func([]Example) (Classifier, error)) ([]float64, error) {
	if k < 2 || len(examples) < k {
		return nil, fmt.Errorf("classify: need k >= 2 and at least k examples (k=%d, n=%d)", k, len(examples))
	}
	accs := make([]float64, k)
	for fold := 0; fold < k; fold++ {
		var trainSet, testSet []Example
		for i, ex := range examples {
			if i%k == fold {
				testSet = append(testSet, ex)
			} else {
				trainSet = append(trainSet, ex)
			}
		}
		cl, err := train(trainSet)
		if err != nil {
			return nil, fmt.Errorf("classify: fold %d: %w", fold, err)
		}
		accs[fold] = Accuracy(cl, testSet)
	}
	return accs, nil
}
